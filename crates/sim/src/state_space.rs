//! Exhaustive state-space analysis for small sequential circuits.
//!
//! Sequential ATPG difficulty is, at bottom, a reachability question: a
//! fault is testable only if some reachable state activates it and some
//! continuation propagates it. For circuits with a handful of flip-flops
//! this can be settled exactly by breadth-first search over the binary
//! state space — the analysis behind statements like "state S is
//! unreachable, therefore fault F is sequentially untestable".
//!
//! The module also computes **synchronizing sequences**: input sequences
//! that drive the machine from the all-X state to one fully known state,
//! regardless of the initial state — what GATEST's phase 1 searches for
//! stochastically.
//!
//! Complexity is exponential in flip-flop count (3^FFs states in the
//! X-aware search), so entry points enforce a flip-flop limit.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use gatest_netlist::Circuit;

use crate::good_sim::GoodSim;
use crate::value::Logic;

/// Upper bound on flip-flop count for exhaustive analysis.
pub const MAX_FFS: usize = 16;

/// Error for circuits too large to analyze exhaustively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooManyFlipFlopsError {
    /// Flip-flops in the offending circuit.
    pub flip_flops: usize,
}

impl std::fmt::Display for TooManyFlipFlopsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exhaustive state analysis is limited to {MAX_FFS} flip-flops, circuit has {}",
            self.flip_flops
        )
    }
}

impl std::error::Error for TooManyFlipFlopsError {}

/// Result of exhaustive reachability analysis from the all-X power-up state.
#[derive(Debug, Clone)]
pub struct StateSpace {
    num_ffs: usize,
    /// Ternary states reachable from power-up (each `Vec<Logic>` of FF
    /// values), with the BFS depth at which each was first reached.
    reachable: HashMap<Vec<Logic>, u32>,
}

impl StateSpace {
    /// Explores every state reachable from the all-X power-up state under
    /// all possible binary input vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TooManyFlipFlopsError`] if the circuit has more than
    /// [`MAX_FFS`] flip-flops. Circuits with more than 20 primary inputs
    /// are also rejected (2^PIs successor computations per state).
    pub fn explore(circuit: &Arc<Circuit>) -> Result<Self, TooManyFlipFlopsError> {
        let nffs = circuit.num_dffs();
        if nffs > MAX_FFS || circuit.num_inputs() > 20 {
            return Err(TooManyFlipFlopsError { flip_flops: nffs });
        }
        let pis = circuit.num_inputs();
        let sim = GoodSim::new(Arc::clone(circuit));

        let mut reachable: HashMap<Vec<Logic>, u32> = HashMap::new();
        let mut queue: VecDeque<(GoodSimState, u32)> = VecDeque::new();

        let start = sim.snapshot();
        reachable.insert(sim.state(), 0);
        queue.push_back((start, 0));

        let mut scratch = sim;
        while let Some((snap, depth)) = queue.pop_front() {
            for input in 0..(1u32 << pis) {
                scratch.restore(&snap);
                let vector = decode_input(input, pis);
                scratch.apply(&vector);
                // The state after latching is the *next* frame's state.
                let next: Vec<Logic> = (0..nffs).map(|i| scratch.next_state_of(i)).collect();
                if !reachable.contains_key(&next) {
                    reachable.insert(next.clone(), depth + 1);
                    // Prepare a snapshot *after* latching: apply any vector
                    // then roll one more frame? Simpler: snapshot the
                    // simulator state now — `apply` already latched the
                    // previous state and computed `next_state`, so the next
                    // `apply` continues correctly.
                    queue.push_back((scratch.snapshot(), depth + 1));
                }
            }
        }

        Ok(StateSpace {
            num_ffs: nffs,
            reachable,
        })
    }

    /// Number of distinct (ternary) states reached, including partial-X
    /// transients.
    pub fn reachable_states(&self) -> usize {
        self.reachable.len()
    }

    /// Number of *fully specified* (no X) reachable states.
    pub fn reachable_binary_states(&self) -> usize {
        self.reachable
            .keys()
            .filter(|s| s.iter().all(|v| v.is_known()))
            .count()
    }

    /// Whether `state` (a full assignment of flip-flop values) is reachable
    /// from power-up.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the circuit's flip-flop count.
    pub fn is_reachable(&self, state: &[Logic]) -> bool {
        assert_eq!(state.len(), self.num_ffs);
        self.reachable.contains_key(state)
    }

    /// The BFS depth (frames from power-up) at which `state` was first
    /// reached, if ever.
    pub fn depth_of(&self, state: &[Logic]) -> Option<u32> {
        self.reachable.get(state).copied()
    }

    /// The fraction of the 2^FFs binary state space that is reachable.
    pub fn binary_coverage(&self) -> f64 {
        if self.num_ffs >= 64 {
            return 0.0;
        }
        self.reachable_binary_states() as f64 / (1u64 << self.num_ffs) as f64
    }
}

/// Finds a synchronizing sequence: inputs that drive the machine from the
/// all-X state to a fully known state. Returns `None` if no such sequence
/// of at most `max_len` frames exists (under three-valued simulation, which
/// is pessimistic but safe).
///
/// # Errors
///
/// Returns [`TooManyFlipFlopsError`] for circuits beyond the exhaustive
/// limits.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use gatest_sim::state_space::synchronizing_sequence;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = Arc::new(gatest_netlist::benchmarks::iscas89("s27")?);
/// let seq = synchronizing_sequence(&circuit, 8)?.expect("s27 synchronizes");
/// assert!(!seq.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn synchronizing_sequence(
    circuit: &Arc<Circuit>,
    max_len: usize,
) -> Result<Option<Vec<Vec<Logic>>>, TooManyFlipFlopsError> {
    let nffs = circuit.num_dffs();
    if nffs > MAX_FFS || circuit.num_inputs() > 20 {
        return Err(TooManyFlipFlopsError { flip_flops: nffs });
    }
    let pis = circuit.num_inputs();
    let sim = GoodSim::new(Arc::clone(circuit));

    // BFS over ternary states, tracking the path.
    let mut seen: HashMap<Vec<Logic>, (Vec<Logic>, u32)> = HashMap::new(); // state -> (parent key.., )
    let mut parents: HashMap<Vec<Logic>, (Vec<Logic>, u32)> = HashMap::new();
    let mut queue: VecDeque<(GoodSimState, Vec<Logic>, usize)> = VecDeque::new();
    queue.push_back((sim.snapshot(), sim.state(), 0));
    seen.insert(sim.state(), (sim.state(), 0));

    let mut scratch = sim;
    while let Some((snap, state_key, len)) = queue.pop_front() {
        if state_key.iter().all(|v| v.is_known()) {
            // Reconstruct the input path.
            let mut path: Vec<u32> = Vec::new();
            let mut cur = state_key.clone();
            while let Some((parent, input)) = parents.get(&cur) {
                path.push(*input);
                cur = parent.clone();
            }
            path.reverse();
            return Ok(Some(
                path.into_iter().map(|i| decode_input(i, pis)).collect(),
            ));
        }
        if len >= max_len {
            continue;
        }
        for input in 0..(1u32 << pis) {
            scratch.restore(&snap);
            scratch.apply(&decode_input(input, pis));
            let next: Vec<Logic> = (0..nffs).map(|i| scratch.next_state_of(i)).collect();
            if !seen.contains_key(&next) {
                seen.insert(next.clone(), (state_key.clone(), input));
                parents.insert(next.clone(), (state_key.clone(), input));
                queue.push_back((scratch.snapshot(), next, len + 1));
            }
        }
    }
    Ok(None)
}

use crate::good_sim::GoodSimState;

fn decode_input(bits: u32, pis: usize) -> Vec<Logic> {
    (0..pis)
        .map(|i| Logic::from_bool(bits >> i & 1 == 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatest_netlist::{CircuitBuilder, GateKind};

    fn toggle_ff() -> Arc<Circuit> {
        // q' = NOT q when en=1 else q ... reachable states: {X, 0, 1}.
        let mut b = CircuitBuilder::new("toggle");
        let en = b.input("en");
        let q = b.forward_ref("q");
        let nq = b.gate(GateKind::Not, "nq", &[q]);
        let hold = b.gate(GateKind::And, "hold", &[q, en]);
        // d = en ? !q : 0  (reset to 0 when en=0, toggle-ish when en=1)
        let d = b.gate(GateKind::And, "d", &[nq, en]);
        b.gate(GateKind::Dff, "q", &[d]);
        b.output(hold);
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn explores_small_machine() {
        let c = toggle_ff();
        let space = StateSpace::explore(&c).unwrap();
        // X (power-up), 0, 1 all occur.
        assert!(space.reachable_states() >= 2);
        assert!(space.reachable_binary_states() >= 1);
        assert!(space.binary_coverage() > 0.0);
    }

    #[test]
    fn s27_reaches_every_binary_state_or_not() {
        let c = Arc::new(gatest_netlist::benchmarks::iscas89("s27").unwrap());
        let space = StateSpace::explore(&c).unwrap();
        // 3 flip-flops -> at most 8 binary states; the analysis tells us
        // exactly how many are reachable from power-up.
        let binary = space.reachable_binary_states();
        assert!((1..=8).contains(&binary), "got {binary}");
        // The all-X power-up state is recorded at depth 0.
        assert_eq!(space.depth_of(&[Logic::X, Logic::X, Logic::X]), Some(0));
    }

    #[test]
    fn s27_has_a_synchronizing_sequence() {
        let c = Arc::new(gatest_netlist::benchmarks::iscas89("s27").unwrap());
        let seq = synchronizing_sequence(&c, 8)
            .unwrap()
            .expect("synchronizes");
        // Verify by simulation: applying the sequence from power-up leaves
        // every flip-flop known.
        let mut sim = GoodSim::new(Arc::clone(&c));
        for v in &seq {
            sim.apply(v);
        }
        assert_eq!(sim.known_next_state(), c.num_dffs());
    }

    #[test]
    fn synchronizing_sequence_is_minimal_length() {
        // BFS guarantees minimality; for s27 the sequence found must be at
        // most the circuit's sequential depth + a small constant.
        let c = Arc::new(gatest_netlist::benchmarks::iscas89("s27").unwrap());
        let seq = synchronizing_sequence(&c, 8).unwrap().unwrap();
        assert!(seq.len() <= 3, "s27 synchronizes in {} frames", seq.len());
    }

    #[test]
    fn unsynchronizable_machine_returns_none() {
        // q' = q XOR a: from X, q stays X forever.
        let mut b = CircuitBuilder::new("unsync");
        let a = b.input("a");
        let q = b.forward_ref("q");
        let d = b.gate(GateKind::Xor, "d", &[a, q]);
        b.gate(GateKind::Dff, "q", &[d]);
        b.output(d);
        let c = Arc::new(b.finish().unwrap());
        assert_eq!(synchronizing_sequence(&c, 6).unwrap(), None);
    }

    #[test]
    fn rejects_oversized_circuits() {
        let c = Arc::new(gatest_netlist::benchmarks::iscas89("s1423").unwrap());
        assert!(StateSpace::explore(&c).is_err());
        assert!(synchronizing_sequence(&c, 4).is_err());
    }
}
