//! Transition (gross-delay) fault model and simulator.
//!
//! The paper's conclusion notes that the GA framework "is not limited to
//! the single stuck-at fault model, and other fault models can easily be
//! accommodated with appropriate fitness functions". This module supplies
//! the standard next model up: **transition faults**. A slow-to-rise fault
//! on net *n* delays every 0→1 transition of *n* by (at least) one clock;
//! under the usual gross-delay approximation the faulty net holds its
//! previous value for the frame in which the transition was supposed to
//! happen:
//!
//! ```text
//! faulty[t] = good[t-1]   if good[t-1] = 0 and good[t] = 1   (slow-to-rise)
//! faulty[t] = good[t]     otherwise
//! ```
//!
//! Detection therefore requires a two-pattern test — initialize the net to
//! the old value, *launch* the transition, and *capture* the difference at
//! a primary output — which in a non-scan sequential circuit means finding
//! the right multi-frame sequence: the same search problem GATEST solves
//! for stuck-at faults, with this simulator as the fitness oracle.
//!
//! The engine reuses the packed 64-slot machinery of the stuck-at
//! simulator: per frame, a transition fault whose launch condition holds is
//! injected as a one-frame stuck-at of the old value; once its effect
//! diverges into the flip-flops it propagates like any other fault.

use std::collections::HashMap;
use std::sync::Arc;

use gatest_netlist::{Circuit, NetId};

use crate::eval::eval_packed;
use crate::fault::FaultId;
use crate::good_sim::{GoodSim, GoodSimState};
use crate::value::{Logic, Pv64};

/// The slow transition direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slow {
    /// Slow-to-rise: 0→1 transitions are delayed.
    Rise,
    /// Slow-to-fall: 1→0 transitions are delayed.
    Fall,
}

impl Slow {
    /// The value the net holds *before* the (delayed) transition.
    pub fn old_value(self) -> Logic {
        match self {
            Slow::Rise => Logic::Zero,
            Slow::Fall => Logic::One,
        }
    }

    /// The value the fault-free net takes when the transition fires.
    pub fn new_value(self) -> Logic {
        match self {
            Slow::Rise => Logic::One,
            Slow::Fall => Logic::Zero,
        }
    }
}

/// A transition fault: a slow 0→1 or 1→0 edge on one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransitionFault {
    /// The slow net.
    pub net: NetId,
    /// The slow direction.
    pub slow: Slow,
}

impl TransitionFault {
    /// Renders the fault with circuit net names, e.g. `G11/STR`.
    pub fn display<'a>(&'a self, circuit: &'a Circuit) -> impl std::fmt::Display + 'a {
        struct D<'a>(&'a TransitionFault, &'a Circuit);
        impl std::fmt::Display for D<'_> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                let dir = match self.0.slow {
                    Slow::Rise => "STR",
                    Slow::Fall => "STF",
                };
                write!(f, "{}/{dir}", self.1.net_name(self.0.net))
            }
        }
        D(self, circuit)
    }
}

/// Enumerates both transition faults on every net of `circuit`.
pub fn transition_universe(circuit: &Circuit) -> Vec<TransitionFault> {
    let mut out = Vec::with_capacity(circuit.num_gates() * 2);
    for net in circuit.net_ids() {
        for slow in [Slow::Rise, Slow::Fall] {
            out.push(TransitionFault { net, slow });
        }
    }
    out
}

/// Per-vector statistics from [`TransitionFaultSim::step`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransitionStepReport {
    /// Faults first detected by this vector.
    pub newly_detected: Vec<FaultId>,
    /// Faults whose launch condition fired this frame.
    pub launched: u64,
    /// Fault effects latched into flip-flops, as (fault, FF) pairs.
    pub ff_effect_pairs: u64,
}

impl TransitionStepReport {
    /// Number of faults newly detected by this vector.
    pub fn detected(&self) -> usize {
        self.newly_detected.len()
    }
}

/// Saved state of a [`TransitionFaultSim`].
#[derive(Debug, Clone)]
pub struct TransitionCheckpoint {
    good: GoodSimState,
    prev_values: Vec<Logic>,
    detected: Vec<bool>,
    active: Vec<FaultId>,
    faulty_ff: Vec<Vec<(u32, Logic)>>,
}

/// The transition-fault simulator.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use gatest_sim::transition::TransitionFaultSim;
/// use gatest_sim::Logic;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = Arc::new(gatest_netlist::benchmarks::iscas89("s27")?);
/// let mut sim = TransitionFaultSim::new(Arc::clone(&circuit));
/// // A transition test needs at least two frames: initialize, then launch.
/// sim.step(&[Logic::One, Logic::One, Logic::Zero, Logic::Zero]);
/// let r = sim.step(&[Logic::Zero, Logic::One, Logic::Zero, Logic::Zero]);
/// # let _ = r;
/// assert!(sim.detected_count() <= sim.total_faults());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransitionFaultSim {
    circuit: Arc<Circuit>,
    good: GoodSim,
    faults: Vec<TransitionFault>,
    detected: Vec<bool>,
    active: Vec<FaultId>,
    faulty_ff: Vec<Vec<(u32, Logic)>>,
    /// Good values of every net in the previous frame (for launch checks).
    prev_values: Vec<Logic>,

    // Scratch (same structure as the stuck-at engine).
    fval: Vec<Pv64>,
    fstamp: Vec<u32>,
    stamp: u32,
    queued: Vec<u32>,
    buckets: Vec<Vec<NetId>>,
}

impl TransitionFaultSim {
    /// Creates a simulator over the full transition-fault universe.
    pub fn new(circuit: Arc<Circuit>) -> Self {
        let faults = transition_universe(&circuit);
        Self::with_faults(circuit, faults)
    }

    /// Creates a simulator over a caller-supplied fault list.
    pub fn with_faults(circuit: Arc<Circuit>, faults: Vec<TransitionFault>) -> Self {
        let good = GoodSim::new(Arc::clone(&circuit));
        let n = circuit.num_gates();
        let nfaults = faults.len();
        let max_level = good.levelization().max_level() as usize;
        TransitionFaultSim {
            circuit,
            good,
            detected: vec![false; nfaults],
            active: (0..nfaults as u32).map(FaultId).collect(),
            faulty_ff: vec![Vec::new(); nfaults],
            prev_values: vec![Logic::X; n],
            faults,
            fval: vec![Pv64::ALL_X; n],
            fstamp: vec![0; n],
            stamp: 0,
            queued: vec![0; n],
            buckets: vec![Vec::new(); max_level + 1],
        }
    }

    /// Total faults targeted.
    pub fn total_faults(&self) -> usize {
        self.faults.len()
    }

    /// Faults detected so far.
    pub fn detected_count(&self) -> usize {
        self.faults.len() - self.active.len()
    }

    /// Still-undetected faults.
    pub fn active_faults(&self) -> &[FaultId] {
        &self.active
    }

    /// The fault behind an id.
    pub fn fault(&self, id: FaultId) -> TransitionFault {
        self.faults[id.index()]
    }

    /// The embedded good simulator.
    pub fn good(&self) -> &GoodSim {
        &self.good
    }

    /// Saves the simulator state.
    pub fn checkpoint(&self) -> TransitionCheckpoint {
        TransitionCheckpoint {
            good: self.good.snapshot(),
            prev_values: self.prev_values.clone(),
            detected: self.detected.clone(),
            active: self.active.clone(),
            faulty_ff: self.faulty_ff.clone(),
        }
    }

    /// Restores a checkpoint from this simulator.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint shape does not match (different circuit).
    pub fn restore(&mut self, cp: &TransitionCheckpoint) {
        assert_eq!(cp.detected.len(), self.detected.len());
        self.good.restore(&cp.good);
        self.prev_values.copy_from_slice(&cp.prev_values);
        self.detected.copy_from_slice(&cp.detected);
        self.active.clear();
        self.active.extend_from_slice(&cp.active);
        self.faulty_ff.clone_from(&cp.faulty_ff);
    }

    /// Applies one vector over all undetected faults.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len() != circuit.num_inputs()`.
    pub fn step(&mut self, vector: &[Logic]) -> TransitionStepReport {
        let targets = self.active.clone();
        self.step_with(vector, &targets)
    }

    /// Applies one vector simulating only `sample`.
    pub fn step_sampled(&mut self, vector: &[Logic], sample: &[FaultId]) -> TransitionStepReport {
        self.step_with(vector, sample)
    }

    fn step_with(&mut self, vector: &[Logic], targets: &[FaultId]) -> TransitionStepReport {
        // Record previous-frame good values, then advance the good machine.
        for id in self.circuit.net_ids() {
            self.prev_values[id.index()] = self.good.value(id);
        }
        self.good.apply(vector);

        let mut report = TransitionStepReport::default();
        let mut detected: Vec<FaultId> = Vec::new();
        for group in targets.chunks(64) {
            self.simulate_group(group, &mut report, &mut detected);
        }

        if !detected.is_empty() {
            detected.sort_unstable();
            detected.dedup();
            for &f in &detected {
                self.detected[f.index()] = true;
                self.faulty_ff[f.index()].clear();
            }
            self.active.retain(|f| !self.detected[f.index()]);
        }
        report.newly_detected = detected;
        report
    }

    fn simulate_group(
        &mut self,
        group: &[FaultId],
        report: &mut TransitionStepReport,
        detected: &mut Vec<FaultId>,
    ) {
        let circuit = Arc::clone(&self.circuit);
        self.stamp = self.stamp.wrapping_add(2);
        let stamp = self.stamp;

        // Conditional injection: a fault forces its net only in frames
        // where the launch condition holds (previous good value = old,
        // current good value = new).
        let mut stem_force: HashMap<NetId, Vec<(u32, Logic)>> = HashMap::new();
        for (slot, &fid) in group.iter().enumerate() {
            let fault = self.faults[fid.index()];
            let prev = self.prev_values[fault.net.index()];
            let cur = self.good.value(fault.net);
            if prev == fault.slow.old_value() && cur == fault.slow.new_value() {
                report.launched += 1;
                stem_force
                    .entry(fault.net)
                    .or_default()
                    .push((slot as u32, fault.slow.old_value()));
            }
        }

        // Seed faulty flip-flop state differences.
        for (slot, &fid) in group.iter().enumerate() {
            let diffs = std::mem::take(&mut self.faulty_ff[fid.index()]);
            for &(dff_idx, v) in &diffs {
                let ff = circuit.dffs()[dff_idx as usize];
                let word = self.effective(ff);
                let mut w = word;
                w.set(slot as u32, v);
                if w != word {
                    self.fval[ff.index()] = w;
                    self.fstamp[ff.index()] = stamp;
                    self.schedule_fanout(&circuit, ff, stamp);
                }
            }
            self.faulty_ff[fid.index()] = diffs;
        }

        // Seed stem injections.
        for (&net, forces) in &stem_force {
            let word = self.effective(net);
            let mut w = word;
            for &(slot, v) in forces {
                w.set(slot, v);
            }
            self.fval[net.index()] = w;
            self.fstamp[net.index()] = stamp;
            if w != word {
                self.schedule_fanout(&circuit, net, stamp);
            }
        }

        // Event-driven levelized propagation (same as the stuck-at engine).
        for level in 1..self.buckets.len() {
            let gates = std::mem::take(&mut self.buckets[level]);
            for gate in gates {
                self.queued[gate.index()] = 0;
                let kind = circuit.kind(gate);
                let mut fanin_words: Vec<Pv64> = Vec::with_capacity(circuit.fanin(gate).len());
                for &src in circuit.fanin(gate) {
                    fanin_words.push(self.effective(src));
                }
                let mut out = eval_packed(kind, &fanin_words);
                if let Some(forces) = stem_force.get(&gate) {
                    for &(slot, v) in forces {
                        out.set(slot, v);
                    }
                }
                let old = self.effective(gate);
                if out != old {
                    self.fval[gate.index()] = out;
                    self.fstamp[gate.index()] = stamp;
                    self.schedule_fanout(&circuit, gate, stamp);
                }
            }
        }

        // Detection at primary outputs.
        let mut detected_mask = 0u64;
        for &po in circuit.outputs() {
            let goodw = Pv64::broadcast(self.good.value(po));
            detected_mask |= self.effective(po).binary_diff(goodw);
        }
        let mut m = detected_mask;
        while m != 0 {
            let slot = m.trailing_zeros();
            detected.push(group[slot as usize]);
            m &= m - 1;
        }

        // New faulty flip-flop state.
        let mut new_state: Vec<Vec<(u32, Logic)>> = vec![Vec::new(); group.len()];
        for (dff_idx, &ff) in circuit.dffs().iter().enumerate() {
            let d = circuit.fanin(ff)[0];
            let faultyw = self.effective(d);
            let goodw = Pv64::broadcast(self.good.next_state_of(dff_idx));
            let mut diff = faultyw.any_diff(goodw);
            while diff != 0 {
                let slot = diff.trailing_zeros();
                new_state[slot as usize].push((dff_idx as u32, faultyw.get(slot)));
                diff &= diff - 1;
            }
        }
        for (slot, &fid) in group.iter().enumerate() {
            let effects = new_state[slot].len() as u64;
            report.ff_effect_pairs += effects;
            self.faulty_ff[fid.index()] = std::mem::take(&mut new_state[slot]);
        }
    }

    #[inline]
    fn effective(&self, net: NetId) -> Pv64 {
        if self.fstamp[net.index()] == self.stamp {
            self.fval[net.index()]
        } else {
            Pv64::broadcast(self.good.value(net))
        }
    }

    fn schedule_fanout(&mut self, circuit: &Circuit, net: NetId, stamp: u32) {
        for &out in circuit.fanout(net) {
            if circuit.kind(out).is_combinational() && self.queued[out.index()] != stamp {
                self.queued[out.index()] = stamp;
                let level = self.good.levelization().level(out) as usize;
                self.buckets[level].push(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatest_netlist::{CircuitBuilder, GateKind};

    fn wire() -> Arc<Circuit> {
        let mut b = CircuitBuilder::new("wire");
        let a = b.input("a");
        let y = b.gate(GateKind::Buf, "y", &[a]);
        b.output(y);
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn universe_has_two_faults_per_net() {
        let c = wire();
        assert_eq!(transition_universe(&c).len(), c.num_gates() * 2);
    }

    #[test]
    fn slow_to_rise_needs_a_rising_pair() {
        let circuit = wire();
        let mut sim = TransitionFaultSim::new(Arc::clone(&circuit));
        // Static 1: no transition, nothing launches or is detected.
        sim.step(&[Logic::One]);
        let r = sim.step(&[Logic::One]);
        assert_eq!(r.launched, 0);
        assert_eq!(r.detected(), 0);
        // 0 -> 1 launches the slow-to-rise faults and detects them at the
        // output (the faulty value lags at 0 while the good value is 1).
        sim.step(&[Logic::Zero]);
        let r = sim.step(&[Logic::One]);
        assert!(r.launched > 0);
        let detected: Vec<_> = r
            .newly_detected
            .iter()
            .map(|&id| sim.fault(id).slow)
            .collect();
        assert!(detected.contains(&Slow::Rise));
        assert!(!detected.contains(&Slow::Fall));
    }

    #[test]
    fn slow_to_fall_needs_a_falling_pair() {
        let circuit = wire();
        let mut sim = TransitionFaultSim::new(Arc::clone(&circuit));
        sim.step(&[Logic::One]);
        let r = sim.step(&[Logic::Zero]);
        let detected: Vec<_> = r
            .newly_detected
            .iter()
            .map(|&id| sim.fault(id).slow)
            .collect();
        assert!(detected.contains(&Slow::Fall));
        assert!(!detected.contains(&Slow::Rise));
    }

    #[test]
    fn both_polarities_need_both_pairs() {
        let circuit = wire();
        let mut sim = TransitionFaultSim::new(Arc::clone(&circuit));
        sim.step(&[Logic::Zero]);
        sim.step(&[Logic::One]);
        sim.step(&[Logic::Zero]);
        // a and y each have STR + STF = 4 faults, all caught.
        assert_eq!(sim.detected_count(), 4);
    }

    #[test]
    fn effects_latch_through_flip_flops() {
        // y observes q one frame after the slow net feeds the D input.
        let mut b = CircuitBuilder::new("pipe");
        let a = b.input("a");
        let g = b.gate(GateKind::Buf, "g", &[a]);
        let q = b.gate(GateKind::Dff, "q", &[g]);
        let y = b.gate(GateKind::Buf, "y", &[q]);
        b.output(y);
        let circuit = Arc::new(b.finish().unwrap());
        let mut sim = TransitionFaultSim::new(Arc::clone(&circuit));
        sim.step(&[Logic::Zero]);
        let launch = sim.step(&[Logic::One]); // g rises; effect latches into q
        assert!(launch.ff_effect_pairs > 0);
        assert_eq!(launch.detected(), 0, "not at the PO yet");
        let capture = sim.step(&[Logic::One]);
        assert!(capture.detected() > 0, "latched effect reaches the PO");
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let circuit = Arc::new(gatest_netlist::benchmarks::iscas89("s27").unwrap());
        let mut sim = TransitionFaultSim::new(circuit);
        sim.step(&[Logic::One, Logic::One, Logic::Zero, Logic::Zero]);
        let cp = sim.checkpoint();
        let probe = [
            vec![Logic::Zero, Logic::One, Logic::One, Logic::Zero],
            vec![Logic::One, Logic::Zero, Logic::Zero, Logic::One],
        ];
        let first: Vec<_> = probe.iter().map(|v| sim.step(v)).collect();
        sim.restore(&cp);
        let second: Vec<_> = probe.iter().map(|v| sim.step(v)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn s27_transition_coverage_under_random() {
        let circuit = Arc::new(gatest_netlist::benchmarks::iscas89("s27").unwrap());
        let mut sim = TransitionFaultSim::new(Arc::clone(&circuit));
        let mut rng = gatest_ga_stub::Rng::new(5);
        for _ in 0..256 {
            let v: Vec<Logic> = (0..4).map(|_| Logic::from_bool(rng.coin())).collect();
            sim.step(&v);
        }
        let cov = sim.detected_count() as f64 / sim.total_faults() as f64;
        assert!(
            cov > 0.5,
            "transition coverage {cov:.2} unexpectedly low on s27"
        );
        assert!(cov < 1.0, "some transition faults need directed tests");
    }

    use super::tests_support as gatest_ga_stub;
}

/// Tiny deterministic PRNG for this crate's tests (keeps `gatest-sim`
/// independent of `gatest-ga`).
#[cfg(test)]
pub(crate) mod tests_support {
    pub struct Rng(u64);
    impl Rng {
        pub fn new(seed: u64) -> Self {
            Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
        }
        pub fn coin(&mut self) -> bool {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0 & 1 == 1
        }
    }
}
