//! Three-valued logic (0 / 1 / X) — scalar and bit-parallel at several
//! widths.
//!
//! The packed representation follows PROOFS: each signal carries two bit
//! planes, `zero` and `one`. Bit *i* of the planes encodes the value seen by
//! parallel lane *i* (one fault, or one pattern, per lane):
//!
//! | `zero` | `one` | value |
//! |--------|-------|-------|
//! | 1      | 0     | 0     |
//! | 0      | 1     | 1     |
//! | 0      | 0     | X     |
//! | 1      | 1     | *invalid* |
//!
//! With this encoding every gate function is a handful of word operations,
//! e.g. `AND`: `one = a.one & b.one`, `zero = a.zero | b.zero`.
//!
//! The planes come in three widths behind the [`PackedValue`] trait:
//! [`Pv64`] (one 64-bit word per plane, the PROOFS original), [`Pv256`]
//! (four words per plane, written so the per-word loops autovectorize —
//! with an explicit AVX2 gate-evaluation path selected once at runtime on
//! x86-64), and [`Pv512`] (eight words per plane, same AVX2 dispatch, two
//! registers per plane op). Which width the fault simulator uses is an
//! execution detail chosen via [`SimBackend`]; results are bit-identical
//! across widths.

use std::fmt;
use std::ops::Not;

use gatest_netlist::GateKind;

/// A scalar three-valued logic value.
///
/// # Example
///
/// ```
/// use gatest_sim::Logic;
///
/// assert_eq!(Logic::Zero & Logic::X, Logic::Zero);
/// assert_eq!(Logic::One & Logic::X, Logic::X);
/// assert_eq!(!Logic::X, Logic::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    #[default]
    X,
}

impl Logic {
    /// Converts a `bool` to `Zero`/`One`.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns `Some(bool)` for binary values, `None` for X.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// Returns `true` if the value is 0 or 1 (not X).
    #[inline]
    pub fn is_known(self) -> bool {
        self != Logic::X
    }

    /// Three-valued AND.
    #[inline]
    pub fn and(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Three-valued OR.
    #[inline]
    pub fn or(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Three-valued XOR.
    #[inline]
    pub fn xor(self, other: Logic) -> Logic {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a ^ b),
            _ => Logic::X,
        }
    }
}

impl Not for Logic {
    type Output = Logic;

    #[inline]
    fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }
}

impl std::ops::BitAnd for Logic {
    type Output = Logic;
    #[inline]
    fn bitand(self, rhs: Logic) -> Logic {
        self.and(rhs)
    }
}

impl std::ops::BitOr for Logic {
    type Output = Logic;
    #[inline]
    fn bitor(self, rhs: Logic) -> Logic {
        self.or(rhs)
    }
}

impl std::ops::BitXor for Logic {
    type Output = Logic;
    #[inline]
    fn bitxor(self, rhs: Logic) -> Logic {
        self.xor(rhs)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
        };
        write!(f, "{c}")
    }
}

// ---------------------------------------------------------------------------
// Lane masks

/// A per-lane bit mask matching one [`PackedValue`] width.
///
/// Diff and force operations on packed words speak masks: `binary_diff`
/// returns the lanes where detection fired, `force` overrides the lanes a
/// fault occupies. [`Pv64`]'s mask is a bare `u64` (so its pre-trait API is
/// unchanged); wider values use one word per 64 lanes.
pub trait LaneMask: Copy + Eq + fmt::Debug + Default + Send + Sync + 'static {
    /// 64-bit words in the mask.
    const WORDS: usize;
    /// The mask with no lane set.
    const EMPTY: Self;

    /// A mask with the first `n` lanes set.
    ///
    /// # Panics
    ///
    /// Panics if `n > WORDS * 64`.
    fn low(n: usize) -> Self;
    /// A mask with only `lane` set.
    fn bit(lane: usize) -> Self;
    /// Word `w` of the mask (lanes `64w..64w+64`).
    fn word(self, w: usize) -> u64;
    /// Whether `lane` is set.
    #[inline]
    fn test(self, lane: usize) -> bool {
        self.word(lane / 64) >> (lane % 64) & 1 != 0
    }
    /// Union.
    fn or(self, rhs: Self) -> Self;
    /// Intersection.
    fn and(self, rhs: Self) -> Self;
    /// Complement over all `WORDS * 64` lane positions. Callers restricting
    /// to a group intersect with [`LaneMask::low`] afterwards.
    fn invert(self) -> Self;
    /// Whether any lane is set.
    #[inline]
    fn any(self) -> bool {
        (0..Self::WORDS).any(|w| self.word(w) != 0)
    }
    /// Number of set lanes.
    #[inline]
    fn count(self) -> u32 {
        (0..Self::WORDS).map(|w| self.word(w).count_ones()).sum()
    }
    /// Calls `f` with every set lane, in ascending lane order.
    ///
    /// Ascending order is load-bearing: the fault simulator's merge walks
    /// detection masks with it, and lane order is fault order within a
    /// group, so the emitted detection sequence is the same at every width.
    #[inline]
    fn for_each(self, mut f: impl FnMut(usize)) {
        for w in 0..Self::WORDS {
            let mut bits = self.word(w);
            while bits != 0 {
                f(w * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
    }
    /// The lowest set lane, if any.
    #[inline]
    fn first(self) -> Option<usize> {
        (0..Self::WORDS).find_map(|w| {
            let bits = self.word(w);
            (bits != 0).then(|| w * 64 + bits.trailing_zeros() as usize)
        })
    }
}

impl LaneMask for u64 {
    const WORDS: usize = 1;
    const EMPTY: u64 = 0;

    #[inline]
    fn low(n: usize) -> u64 {
        assert!(n <= 64);
        if n == 64 {
            !0
        } else {
            (1u64 << n) - 1
        }
    }
    #[inline]
    fn bit(lane: usize) -> u64 {
        assert!(lane < 64);
        1u64 << lane
    }
    #[inline]
    fn word(self, w: usize) -> u64 {
        debug_assert_eq!(w, 0);
        self
    }
    #[inline]
    fn or(self, rhs: u64) -> u64 {
        self | rhs
    }
    #[inline]
    fn and(self, rhs: u64) -> u64 {
        self & rhs
    }
    #[inline]
    fn invert(self) -> u64 {
        !self
    }
}

/// A 256-lane mask: one bit per [`Pv256`] lane, four words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mask256(pub [u64; 4]);

impl LaneMask for Mask256 {
    const WORDS: usize = 4;
    const EMPTY: Mask256 = Mask256([0; 4]);

    #[inline]
    fn low(n: usize) -> Mask256 {
        assert!(n <= 256);
        let mut words = [0u64; 4];
        for (w, word) in words.iter_mut().enumerate() {
            let lanes = n.saturating_sub(w * 64).min(64);
            *word = <u64 as LaneMask>::low(lanes);
        }
        Mask256(words)
    }
    #[inline]
    fn bit(lane: usize) -> Mask256 {
        assert!(lane < 256);
        let mut words = [0u64; 4];
        words[lane / 64] = 1u64 << (lane % 64);
        Mask256(words)
    }
    #[inline]
    fn word(self, w: usize) -> u64 {
        self.0[w]
    }
    #[inline]
    fn or(self, rhs: Mask256) -> Mask256 {
        Mask256(std::array::from_fn(|w| self.0[w] | rhs.0[w]))
    }
    #[inline]
    fn and(self, rhs: Mask256) -> Mask256 {
        Mask256(std::array::from_fn(|w| self.0[w] & rhs.0[w]))
    }
    #[inline]
    fn invert(self) -> Mask256 {
        Mask256(std::array::from_fn(|w| !self.0[w]))
    }
}

/// A 512-lane mask: one bit per [`Pv512`] lane, eight words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mask512(pub [u64; 8]);

impl LaneMask for Mask512 {
    const WORDS: usize = 8;
    const EMPTY: Mask512 = Mask512([0; 8]);

    #[inline]
    fn low(n: usize) -> Mask512 {
        assert!(n <= 512);
        let mut words = [0u64; 8];
        for (w, word) in words.iter_mut().enumerate() {
            let lanes = n.saturating_sub(w * 64).min(64);
            *word = <u64 as LaneMask>::low(lanes);
        }
        Mask512(words)
    }
    #[inline]
    fn bit(lane: usize) -> Mask512 {
        assert!(lane < 512);
        let mut words = [0u64; 8];
        words[lane / 64] = 1u64 << (lane % 64);
        Mask512(words)
    }
    #[inline]
    fn word(self, w: usize) -> u64 {
        self.0[w]
    }
    #[inline]
    fn or(self, rhs: Mask512) -> Mask512 {
        Mask512(std::array::from_fn(|w| self.0[w] | rhs.0[w]))
    }
    #[inline]
    fn and(self, rhs: Mask512) -> Mask512 {
        Mask512(std::array::from_fn(|w| self.0[w] & rhs.0[w]))
    }
    #[inline]
    fn invert(self) -> Mask512 {
        Mask512(std::array::from_fn(|w| !self.0[w]))
    }
}

// ---------------------------------------------------------------------------
// The width-generic packed value

/// A packed word of `LANES` three-valued values (one per parallel lane).
///
/// All implementations share the PROOFS two-plane encoding and the same
/// per-lane semantics — the width-generic test suite in this module pins
/// every operation to scalar [`Logic`] behaviour in every lane. The fault
/// simulator, PPSFP grader, and packed good-machine are generic over this
/// trait, so switching widths changes how many faults or patterns ride in
/// one word, never what any lane computes.
pub trait PackedValue: Copy + Eq + fmt::Debug + Default + Send + Sync + 'static {
    /// 64-bit words per plane.
    const WORDS: usize;
    /// Parallel lanes (`WORDS * 64`).
    const LANES: usize;
    /// The backend name surfaced in telemetry (`scalar64`, `wide256`).
    const NAME: &'static str;
    /// The per-lane mask type produced by diff operations.
    type Mask: LaneMask;

    /// Every lane X.
    const ALL_X: Self;
    /// Every lane 0.
    const ALL_ZERO: Self;
    /// Every lane 1.
    const ALL_ONE: Self;

    /// A word with every lane set to `v`.
    fn broadcast(v: Logic) -> Self;
    /// The value in `lane`.
    fn get_lane(self, lane: usize) -> Logic;
    /// Sets `lane` to `v`.
    fn set_lane(&mut self, lane: usize, v: Logic);
    /// Three-valued AND of two words.
    fn and(self, rhs: Self) -> Self;
    /// Three-valued OR of two words.
    fn or(self, rhs: Self) -> Self;
    /// Three-valued XOR of two words (X wherever either side is X).
    fn xor(self, rhs: Self) -> Self;
    /// Three-valued NOT.
    fn not(self) -> Self;
    /// Lanes where both words hold *binary* values that differ (the PROOFS
    /// detection criterion at primary outputs).
    fn binary_diff(self, rhs: Self) -> Self::Mask;
    /// Lanes where the two words differ at all (including binary vs. X).
    fn any_diff(self, rhs: Self) -> Self::Mask;
    /// Lanes holding a known (binary) value.
    fn known_mask(self) -> Self::Mask;
    /// Returns `true` if no lane has both planes set (the invalid encoding).
    fn is_valid(self) -> bool;
    /// Forces the lanes in `mask` to `v`, leaving other lanes untouched.
    fn force(self, mask: Self::Mask, v: Logic) -> Self;

    /// Loads a value from structure-of-arrays plane storage (`WORDS` words
    /// from the head of each slice).
    fn load_planes(zero: &[u64], one: &[u64]) -> Self;
    /// Stores the value into structure-of-arrays plane storage.
    fn store_planes(self, zero: &mut [u64], one: &mut [u64]);

    /// Evaluates a gate over packed fanin words.
    ///
    /// `Input` and `Dff` gates are *not* evaluated here — their values come
    /// from the test vector and the state store respectively; passing them
    /// panics in debug builds and returns X otherwise. Implementations may
    /// override this with a vectorized path but must stay bit-identical to
    /// the default.
    #[inline]
    fn eval_gate(kind: GateKind, fanin: &[Self]) -> Self {
        eval_gate_portable(kind, fanin)
    }
}

/// The width-generic gate evaluation fold shared by every backend (and the
/// body the AVX2 path recompiles with 256-bit registers enabled).
#[inline]
pub(crate) fn eval_gate_portable<P: PackedValue>(kind: GateKind, fanin: &[P]) -> P {
    match kind {
        GateKind::And => fanin.iter().copied().fold(P::ALL_ONE, P::and),
        GateKind::Nand => fanin.iter().copied().fold(P::ALL_ONE, P::and).not(),
        GateKind::Or => fanin.iter().copied().fold(P::ALL_ZERO, P::or),
        GateKind::Nor => fanin.iter().copied().fold(P::ALL_ZERO, P::or).not(),
        GateKind::Xor => fanin.iter().copied().fold(P::ALL_ZERO, P::xor),
        GateKind::Xnor => fanin.iter().copied().fold(P::ALL_ZERO, P::xor).not(),
        GateKind::Not => fanin[0].not(),
        GateKind::Buf => fanin[0],
        GateKind::Const0 => P::ALL_ZERO,
        GateKind::Const1 => P::ALL_ONE,
        GateKind::Input | GateKind::Dff => {
            debug_assert!(false, "{kind} values come from the environment");
            P::ALL_X
        }
    }
}

// ---------------------------------------------------------------------------
// Pv64: the 64-lane original

/// A packed word of 64 three-valued values (one per parallel slot).
///
/// # Example
///
/// ```
/// use gatest_sim::{Logic, Pv64};
///
/// let mut w = Pv64::broadcast(Logic::One);
/// w.set(3, Logic::Zero);
/// w.set(7, Logic::X);
/// assert_eq!(w.get(0), Logic::One);
/// assert_eq!(w.get(3), Logic::Zero);
/// assert_eq!(w.get(7), Logic::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pv64 {
    /// Plane of slots holding logic 0.
    pub zero: u64,
    /// Plane of slots holding logic 1.
    pub one: u64,
}

impl Pv64 {
    /// All 64 slots X.
    pub const ALL_X: Pv64 = Pv64 { zero: 0, one: 0 };

    /// All 64 slots 0.
    pub const ALL_ZERO: Pv64 = Pv64 { zero: !0, one: 0 };

    /// All 64 slots 1.
    pub const ALL_ONE: Pv64 = Pv64 { zero: 0, one: !0 };

    /// A word with every slot set to `v`.
    #[inline]
    pub fn broadcast(v: Logic) -> Pv64 {
        match v {
            Logic::Zero => Pv64::ALL_ZERO,
            Logic::One => Pv64::ALL_ONE,
            Logic::X => Pv64::ALL_X,
        }
    }

    /// The value in slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[inline]
    pub fn get(self, i: u32) -> Logic {
        assert!(i < 64);
        let z = (self.zero >> i) & 1;
        let o = (self.one >> i) & 1;
        match (z, o) {
            (1, 0) => Logic::Zero,
            (0, 1) => Logic::One,
            (0, 0) => Logic::X,
            _ => unreachable!("invalid Pv64 encoding in slot {i}"),
        }
    }

    /// Sets slot `i` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[inline]
    pub fn set(&mut self, i: u32, v: Logic) {
        assert!(i < 64);
        let bit = 1u64 << i;
        self.zero &= !bit;
        self.one &= !bit;
        match v {
            Logic::Zero => self.zero |= bit,
            Logic::One => self.one |= bit,
            Logic::X => {}
        }
    }

    /// Three-valued AND of two words.
    #[inline]
    pub fn and(self, rhs: Pv64) -> Pv64 {
        Pv64 {
            zero: self.zero | rhs.zero,
            one: self.one & rhs.one,
        }
    }

    /// Three-valued OR of two words.
    #[inline]
    pub fn or(self, rhs: Pv64) -> Pv64 {
        Pv64 {
            zero: self.zero & rhs.zero,
            one: self.one | rhs.one,
        }
    }

    /// Three-valued XOR of two words (X wherever either side is X).
    #[inline]
    pub fn xor(self, rhs: Pv64) -> Pv64 {
        Pv64 {
            zero: (self.zero & rhs.zero) | (self.one & rhs.one),
            one: (self.zero & rhs.one) | (self.one & rhs.zero),
        }
    }

    /// Three-valued NOT.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn not(self) -> Pv64 {
        Pv64 {
            zero: self.one,
            one: self.zero,
        }
    }

    /// Slots where both words hold *binary* values that differ.
    ///
    /// This is PROOFS's detection criterion at primary outputs: the fault is
    /// detected only where the good and faulty values are both known and
    /// opposite.
    #[inline]
    pub fn binary_diff(self, rhs: Pv64) -> u64 {
        (self.zero & rhs.one) | (self.one & rhs.zero)
    }

    /// Slots where the two words differ at all (including binary vs. X).
    #[inline]
    pub fn any_diff(self, rhs: Pv64) -> u64 {
        (self.zero ^ rhs.zero) | (self.one ^ rhs.one)
    }

    /// Slots holding a known (binary) value.
    #[inline]
    pub fn known_mask(self) -> u64 {
        self.zero | self.one
    }

    /// Returns `true` if no slot has both planes set (the invalid encoding).
    #[inline]
    pub fn is_valid(self) -> bool {
        self.zero & self.one == 0
    }

    /// Forces the slots in `mask` to `v`, leaving other slots untouched.
    #[inline]
    pub fn force(self, mask: u64, v: Logic) -> Pv64 {
        let mut out = Pv64 {
            zero: self.zero & !mask,
            one: self.one & !mask,
        };
        match v {
            Logic::Zero => out.zero |= mask,
            Logic::One => out.one |= mask,
            Logic::X => {}
        }
        out
    }
}

impl PackedValue for Pv64 {
    const WORDS: usize = 1;
    const LANES: usize = 64;
    const NAME: &'static str = "scalar64";
    type Mask = u64;

    const ALL_X: Pv64 = Pv64::ALL_X;
    const ALL_ZERO: Pv64 = Pv64::ALL_ZERO;
    const ALL_ONE: Pv64 = Pv64::ALL_ONE;

    #[inline]
    fn broadcast(v: Logic) -> Pv64 {
        Pv64::broadcast(v)
    }
    #[inline]
    fn get_lane(self, lane: usize) -> Logic {
        self.get(lane as u32)
    }
    #[inline]
    fn set_lane(&mut self, lane: usize, v: Logic) {
        self.set(lane as u32, v);
    }
    #[inline]
    fn and(self, rhs: Pv64) -> Pv64 {
        Pv64::and(self, rhs)
    }
    #[inline]
    fn or(self, rhs: Pv64) -> Pv64 {
        Pv64::or(self, rhs)
    }
    #[inline]
    fn xor(self, rhs: Pv64) -> Pv64 {
        Pv64::xor(self, rhs)
    }
    #[inline]
    fn not(self) -> Pv64 {
        Pv64::not(self)
    }
    #[inline]
    fn binary_diff(self, rhs: Pv64) -> u64 {
        Pv64::binary_diff(self, rhs)
    }
    #[inline]
    fn any_diff(self, rhs: Pv64) -> u64 {
        Pv64::any_diff(self, rhs)
    }
    #[inline]
    fn known_mask(self) -> u64 {
        Pv64::known_mask(self)
    }
    #[inline]
    fn is_valid(self) -> bool {
        Pv64::is_valid(self)
    }
    #[inline]
    fn force(self, mask: u64, v: Logic) -> Pv64 {
        Pv64::force(self, mask, v)
    }
    #[inline]
    fn load_planes(zero: &[u64], one: &[u64]) -> Pv64 {
        Pv64 {
            zero: zero[0],
            one: one[0],
        }
    }
    #[inline]
    fn store_planes(self, zero: &mut [u64], one: &mut [u64]) {
        zero[0] = self.zero;
        one[0] = self.one;
    }
}

impl fmt::Display for Pv64 {
    /// Slot 0 first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..64 {
            write!(f, "{}", self.get(i))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Pv256: four words per plane

/// A packed word of 256 three-valued values: four 64-bit words per plane.
///
/// The per-word loops are written so the compiler autovectorizes them; on
/// x86-64 hosts with AVX2 the gate-evaluation fold additionally dispatches
/// (once, at first use) to a clone of the same code compiled with 256-bit
/// vector registers enabled. Both paths are bit-identical to [`Pv64`]
/// semantics in every lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pv256 {
    /// Plane of lanes holding logic 0.
    pub zero: [u64; 4],
    /// Plane of lanes holding logic 1.
    pub one: [u64; 4],
}

impl Pv256 {
    /// All 256 lanes X.
    pub const ALL_X: Pv256 = Pv256 {
        zero: [0; 4],
        one: [0; 4],
    };

    /// All 256 lanes 0.
    pub const ALL_ZERO: Pv256 = Pv256 {
        zero: [!0; 4],
        one: [0; 4],
    };

    /// All 256 lanes 1.
    pub const ALL_ONE: Pv256 = Pv256 {
        zero: [0; 4],
        one: [!0; 4],
    };
}

impl PackedValue for Pv256 {
    const WORDS: usize = 4;
    const LANES: usize = 256;
    const NAME: &'static str = "wide256";
    type Mask = Mask256;

    const ALL_X: Pv256 = Pv256::ALL_X;
    const ALL_ZERO: Pv256 = Pv256::ALL_ZERO;
    const ALL_ONE: Pv256 = Pv256::ALL_ONE;

    #[inline]
    fn broadcast(v: Logic) -> Pv256 {
        match v {
            Logic::Zero => Pv256::ALL_ZERO,
            Logic::One => Pv256::ALL_ONE,
            Logic::X => Pv256::ALL_X,
        }
    }

    #[inline]
    fn get_lane(self, lane: usize) -> Logic {
        assert!(lane < 256);
        let (w, b) = (lane / 64, lane % 64);
        let z = (self.zero[w] >> b) & 1;
        let o = (self.one[w] >> b) & 1;
        match (z, o) {
            (1, 0) => Logic::Zero,
            (0, 1) => Logic::One,
            (0, 0) => Logic::X,
            _ => unreachable!("invalid Pv256 encoding in lane {lane}"),
        }
    }

    #[inline]
    fn set_lane(&mut self, lane: usize, v: Logic) {
        assert!(lane < 256);
        let (w, b) = (lane / 64, lane % 64);
        let bit = 1u64 << b;
        self.zero[w] &= !bit;
        self.one[w] &= !bit;
        match v {
            Logic::Zero => self.zero[w] |= bit,
            Logic::One => self.one[w] |= bit,
            Logic::X => {}
        }
    }

    #[inline]
    fn and(self, rhs: Pv256) -> Pv256 {
        let mut out = Pv256::ALL_X;
        for w in 0..4 {
            out.zero[w] = self.zero[w] | rhs.zero[w];
            out.one[w] = self.one[w] & rhs.one[w];
        }
        out
    }

    #[inline]
    fn or(self, rhs: Pv256) -> Pv256 {
        let mut out = Pv256::ALL_X;
        for w in 0..4 {
            out.zero[w] = self.zero[w] & rhs.zero[w];
            out.one[w] = self.one[w] | rhs.one[w];
        }
        out
    }

    #[inline]
    fn xor(self, rhs: Pv256) -> Pv256 {
        let mut out = Pv256::ALL_X;
        for w in 0..4 {
            out.zero[w] = (self.zero[w] & rhs.zero[w]) | (self.one[w] & rhs.one[w]);
            out.one[w] = (self.zero[w] & rhs.one[w]) | (self.one[w] & rhs.zero[w]);
        }
        out
    }

    #[inline]
    fn not(self) -> Pv256 {
        Pv256 {
            zero: self.one,
            one: self.zero,
        }
    }

    #[inline]
    fn binary_diff(self, rhs: Pv256) -> Mask256 {
        Mask256(std::array::from_fn(|w| {
            (self.zero[w] & rhs.one[w]) | (self.one[w] & rhs.zero[w])
        }))
    }

    #[inline]
    fn any_diff(self, rhs: Pv256) -> Mask256 {
        Mask256(std::array::from_fn(|w| {
            (self.zero[w] ^ rhs.zero[w]) | (self.one[w] ^ rhs.one[w])
        }))
    }

    #[inline]
    fn known_mask(self) -> Mask256 {
        Mask256(std::array::from_fn(|w| self.zero[w] | self.one[w]))
    }

    #[inline]
    fn is_valid(self) -> bool {
        (0..4).all(|w| self.zero[w] & self.one[w] == 0)
    }

    #[inline]
    fn force(self, mask: Mask256, v: Logic) -> Pv256 {
        let mut out = Pv256::ALL_X;
        for w in 0..4 {
            out.zero[w] = self.zero[w] & !mask.0[w];
            out.one[w] = self.one[w] & !mask.0[w];
            match v {
                Logic::Zero => out.zero[w] |= mask.0[w],
                Logic::One => out.one[w] |= mask.0[w],
                Logic::X => {}
            }
        }
        out
    }

    #[inline]
    fn load_planes(zero: &[u64], one: &[u64]) -> Pv256 {
        Pv256 {
            zero: zero[..4].try_into().expect("four words per plane"),
            one: one[..4].try_into().expect("four words per plane"),
        }
    }

    #[inline]
    fn store_planes(self, zero: &mut [u64], one: &mut [u64]) {
        zero[..4].copy_from_slice(&self.zero);
        one[..4].copy_from_slice(&self.one);
    }

    #[inline]
    fn eval_gate(kind: GateKind, fanin: &[Pv256]) -> Pv256 {
        #[cfg(target_arch = "x86_64")]
        if avx2::available() {
            // SAFETY: `available` checked AVX2 support at runtime.
            return unsafe { avx2::eval_gate(kind, fanin) };
        }
        eval_gate_portable(kind, fanin)
    }
}

impl fmt::Display for Pv256 {
    /// Lane 0 first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..256 {
            write!(f, "{}", self.get_lane(i))?;
        }
        Ok(())
    }
}

/// The explicit AVX2 gate-evaluation path: the exact portable fold,
/// recompiled with the `avx2` target feature so the `[u64; 4]` plane
/// operations lower to single 256-bit vector instructions. Selected once at
/// runtime via `is_x86_feature_detected!`; hosts without AVX2 keep the
/// portable (still autovectorizable) path.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{eval_gate_portable, Pv256, Pv512};
    use gatest_netlist::GateKind;
    use std::sync::OnceLock;

    /// Whether the running CPU supports AVX2 (detected once).
    pub(super) fn available() -> bool {
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
    }

    /// # Safety
    ///
    /// The caller must have verified AVX2 support (see [`available`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn eval_gate(kind: GateKind, fanin: &[Pv256]) -> Pv256 {
        eval_gate_portable(kind, fanin)
    }

    /// The [`Pv512`] clone of [`eval_gate`]: each `[u64; 8]` plane op lowers
    /// to a pair of 256-bit vector instructions. (`avx512f` as a
    /// `target_feature` needs a newer compiler than this crate's MSRV, so
    /// 512-bit lanes ride two AVX2 registers per plane for now.)
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support (see [`available`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn eval_gate512(kind: GateKind, fanin: &[Pv512]) -> Pv512 {
        eval_gate_portable(kind, fanin)
    }
}

// ---------------------------------------------------------------------------
// Pv512: eight words per plane

/// A packed word of 512 three-valued values: eight 64-bit words per plane.
///
/// Doubles [`Pv256`]'s lane count so half as many fault groups pay the
/// width-independent per-group costs (forcing-table builds, event
/// scheduling, per-gate bookkeeping). The per-word loops autovectorize; on
/// x86-64 hosts with AVX2 the gate-evaluation fold dispatches to a clone
/// compiled with 256-bit vector registers enabled (two per plane op —
/// `avx512f` codegen needs a newer compiler than the crate's MSRV). Both
/// paths are bit-identical to [`Pv64`] semantics in every lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pv512 {
    /// Plane of lanes holding logic 0.
    pub zero: [u64; 8],
    /// Plane of lanes holding logic 1.
    pub one: [u64; 8],
}

impl Pv512 {
    /// All 512 lanes X.
    pub const ALL_X: Pv512 = Pv512 {
        zero: [0; 8],
        one: [0; 8],
    };

    /// All 512 lanes 0.
    pub const ALL_ZERO: Pv512 = Pv512 {
        zero: [!0; 8],
        one: [0; 8],
    };

    /// All 512 lanes 1.
    pub const ALL_ONE: Pv512 = Pv512 {
        zero: [0; 8],
        one: [!0; 8],
    };
}

impl PackedValue for Pv512 {
    const WORDS: usize = 8;
    const LANES: usize = 512;
    const NAME: &'static str = "wide512";
    type Mask = Mask512;

    const ALL_X: Pv512 = Pv512::ALL_X;
    const ALL_ZERO: Pv512 = Pv512::ALL_ZERO;
    const ALL_ONE: Pv512 = Pv512::ALL_ONE;

    #[inline]
    fn broadcast(v: Logic) -> Pv512 {
        match v {
            Logic::Zero => Pv512::ALL_ZERO,
            Logic::One => Pv512::ALL_ONE,
            Logic::X => Pv512::ALL_X,
        }
    }

    #[inline]
    fn get_lane(self, lane: usize) -> Logic {
        assert!(lane < 512);
        let (w, b) = (lane / 64, lane % 64);
        let z = (self.zero[w] >> b) & 1;
        let o = (self.one[w] >> b) & 1;
        match (z, o) {
            (1, 0) => Logic::Zero,
            (0, 1) => Logic::One,
            (0, 0) => Logic::X,
            _ => unreachable!("invalid Pv512 encoding in lane {lane}"),
        }
    }

    #[inline]
    fn set_lane(&mut self, lane: usize, v: Logic) {
        assert!(lane < 512);
        let (w, b) = (lane / 64, lane % 64);
        let bit = 1u64 << b;
        self.zero[w] &= !bit;
        self.one[w] &= !bit;
        match v {
            Logic::Zero => self.zero[w] |= bit,
            Logic::One => self.one[w] |= bit,
            Logic::X => {}
        }
    }

    #[inline]
    fn and(self, rhs: Pv512) -> Pv512 {
        let mut out = Pv512::ALL_X;
        for w in 0..8 {
            out.zero[w] = self.zero[w] | rhs.zero[w];
            out.one[w] = self.one[w] & rhs.one[w];
        }
        out
    }

    #[inline]
    fn or(self, rhs: Pv512) -> Pv512 {
        let mut out = Pv512::ALL_X;
        for w in 0..8 {
            out.zero[w] = self.zero[w] & rhs.zero[w];
            out.one[w] = self.one[w] | rhs.one[w];
        }
        out
    }

    #[inline]
    fn xor(self, rhs: Pv512) -> Pv512 {
        let mut out = Pv512::ALL_X;
        for w in 0..8 {
            out.zero[w] = (self.zero[w] & rhs.zero[w]) | (self.one[w] & rhs.one[w]);
            out.one[w] = (self.zero[w] & rhs.one[w]) | (self.one[w] & rhs.zero[w]);
        }
        out
    }

    #[inline]
    fn not(self) -> Pv512 {
        Pv512 {
            zero: self.one,
            one: self.zero,
        }
    }

    #[inline]
    fn binary_diff(self, rhs: Pv512) -> Mask512 {
        Mask512(std::array::from_fn(|w| {
            (self.zero[w] & rhs.one[w]) | (self.one[w] & rhs.zero[w])
        }))
    }

    #[inline]
    fn any_diff(self, rhs: Pv512) -> Mask512 {
        Mask512(std::array::from_fn(|w| {
            (self.zero[w] ^ rhs.zero[w]) | (self.one[w] ^ rhs.one[w])
        }))
    }

    #[inline]
    fn known_mask(self) -> Mask512 {
        Mask512(std::array::from_fn(|w| self.zero[w] | self.one[w]))
    }

    #[inline]
    fn is_valid(self) -> bool {
        (0..8).all(|w| self.zero[w] & self.one[w] == 0)
    }

    #[inline]
    fn force(self, mask: Mask512, v: Logic) -> Pv512 {
        let mut out = Pv512::ALL_X;
        for w in 0..8 {
            out.zero[w] = self.zero[w] & !mask.0[w];
            out.one[w] = self.one[w] & !mask.0[w];
            match v {
                Logic::Zero => out.zero[w] |= mask.0[w],
                Logic::One => out.one[w] |= mask.0[w],
                Logic::X => {}
            }
        }
        out
    }

    #[inline]
    fn load_planes(zero: &[u64], one: &[u64]) -> Pv512 {
        Pv512 {
            zero: zero[..8].try_into().expect("eight words per plane"),
            one: one[..8].try_into().expect("eight words per plane"),
        }
    }

    #[inline]
    fn store_planes(self, zero: &mut [u64], one: &mut [u64]) {
        zero[..8].copy_from_slice(&self.zero);
        one[..8].copy_from_slice(&self.one);
    }

    #[inline]
    fn eval_gate(kind: GateKind, fanin: &[Pv512]) -> Pv512 {
        #[cfg(target_arch = "x86_64")]
        if avx2::available() {
            // SAFETY: `available` checked AVX2 support at runtime.
            return unsafe { avx2::eval_gate512(kind, fanin) };
        }
        eval_gate_portable(kind, fanin)
    }
}

impl fmt::Display for Pv512 {
    /// Lane 0 first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..512 {
            write!(f, "{}", self.get_lane(i))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Backend selection

/// Which packed-value width the fault simulator runs on.
///
/// A pure execution detail, like thread counts: every backend produces
/// bit-identical results, so the width is excluded from the checkpoint
/// configuration digest and is free to differ between a run and its resumed
/// leg. `Auto` resolves to [`Pv256`], whose gate evaluation additionally
/// uses AVX2 when the host supports it; [`Pv512`] is opt-in (its plane ops
/// span two AVX2 registers, which wins only when group-count amortization
/// dominates — measure before defaulting to it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimBackend {
    /// One 64-bit word per plane ([`Pv64`]) — 64 faults per group.
    #[default]
    Scalar64,
    /// Four words per plane ([`Pv256`]) — 256 faults per group.
    Wide256,
    /// Eight words per plane ([`Pv512`]) — 512 faults per group.
    Wide512,
    /// Pick for the host: resolves to [`SimBackend::Wide256`].
    Auto,
}

impl SimBackend {
    /// Parses a backend name as accepted by `--sim-width`.
    pub fn parse(s: &str) -> Option<SimBackend> {
        match s {
            "scalar64" | "64" => Some(SimBackend::Scalar64),
            "wide256" | "256" => Some(SimBackend::Wide256),
            "wide512" | "512" => Some(SimBackend::Wide512),
            "auto" => Some(SimBackend::Auto),
            _ => None,
        }
    }

    /// The canonical flag spelling (`scalar64`, `wide256`, `wide512`,
    /// `auto`).
    pub fn as_str(self) -> &'static str {
        match self {
            SimBackend::Scalar64 => "scalar64",
            SimBackend::Wide256 => "wide256",
            SimBackend::Wide512 => "wide512",
            SimBackend::Auto => "auto",
        }
    }

    /// Resolves `Auto` to a concrete backend.
    ///
    /// `Auto` picks [`SimBackend::Wide256`]: one AVX2 register per plane
    /// operation on x86-64, and group-count amortization over [`Pv64`] at
    /// every size. [`SimBackend::Wide512`] stays opt-in — its plane ops
    /// span two registers, so it wins only when the per-group overheads it
    /// halves outweigh the wider words it moves. AVX2-vs-portable is
    /// decided separately, per gate evaluation, inside [`Pv256`]/[`Pv512`].
    pub fn resolved(self) -> SimBackend {
        match self {
            SimBackend::Auto => SimBackend::Wide256,
            concrete => concrete,
        }
    }

    /// Lanes per fault group of the resolved backend.
    pub fn lanes(self) -> usize {
        match self.resolved() {
            SimBackend::Scalar64 => Pv64::LANES,
            SimBackend::Wide512 => Pv512::LANES,
            _ => Pv256::LANES,
        }
    }

    /// Backend name of the resolved backend ([`PackedValue::NAME`]).
    pub fn name(self) -> &'static str {
        match self.resolved() {
            SimBackend::Scalar64 => Pv64::NAME,
            SimBackend::Wide512 => Pv512::NAME,
            _ => Pv256::NAME,
        }
    }
}

impl fmt::Display for SimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SimBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<SimBackend, String> {
        SimBackend::parse(s).ok_or_else(|| {
            format!("unknown sim backend `{s}` (expected scalar64, wide256, wide512, or auto)")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALUES: [Logic; 3] = [Logic::Zero, Logic::One, Logic::X];

    #[test]
    fn scalar_and_truth_table() {
        use Logic::*;
        assert_eq!(Zero & Zero, Zero);
        assert_eq!(Zero & One, Zero);
        assert_eq!(Zero & X, Zero);
        assert_eq!(One & One, One);
        assert_eq!(One & X, X);
        assert_eq!(X & X, X);
    }

    #[test]
    fn scalar_or_truth_table() {
        use Logic::*;
        assert_eq!(One | Zero, One);
        assert_eq!(One | X, One);
        assert_eq!(Zero | Zero, Zero);
        assert_eq!(Zero | X, X);
        assert_eq!(X | X, X);
    }

    #[test]
    fn scalar_xor_truth_table() {
        use Logic::*;
        assert_eq!(Zero ^ One, One);
        assert_eq!(One ^ One, Zero);
        assert_eq!(One ^ X, X);
        assert_eq!(X ^ X, X);
    }

    #[test]
    fn scalar_not() {
        assert_eq!(!Logic::Zero, Logic::One);
        assert_eq!(!Logic::One, Logic::Zero);
        assert_eq!(!Logic::X, Logic::X);
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from_bool(true).to_bool(), Some(true));
        assert_eq!(Logic::from_bool(false).to_bool(), Some(false));
        assert_eq!(Logic::X.to_bool(), None);
    }

    #[test]
    fn packed_get_set_round_trip() {
        let mut w = Pv64::ALL_X;
        for (i, &v) in [Logic::Zero, Logic::One, Logic::X, Logic::One]
            .iter()
            .enumerate()
        {
            w.set(i as u32, v);
        }
        assert_eq!(w.get(0), Logic::Zero);
        assert_eq!(w.get(1), Logic::One);
        assert_eq!(w.get(2), Logic::X);
        assert_eq!(w.get(3), Logic::One);
        assert_eq!(w.get(60), Logic::X);
        assert!(w.is_valid());
    }

    #[test]
    fn packed_ops_agree_with_scalar() {
        // Exhaustive per-slot agreement between packed and scalar operators.
        for &a in &VALUES {
            for &b in &VALUES {
                let wa = Pv64::broadcast(a);
                let wb = Pv64::broadcast(b);
                assert_eq!(wa.and(wb).get(17), a & b, "and({a},{b})");
                assert_eq!(wa.or(wb).get(17), a | b, "or({a},{b})");
                assert_eq!(wa.xor(wb).get(17), a ^ b, "xor({a},{b})");
                assert_eq!(wa.not().get(17), !a, "not({a})");
                assert!(wa.and(wb).is_valid());
                assert!(wa.xor(wb).is_valid());
            }
        }
    }

    #[test]
    fn binary_diff_requires_both_known() {
        let zero = Pv64::ALL_ZERO;
        let one = Pv64::ALL_ONE;
        let x = Pv64::ALL_X;
        assert_eq!(zero.binary_diff(one), !0);
        assert_eq!(zero.binary_diff(zero), 0);
        assert_eq!(zero.binary_diff(x), 0);
        assert_eq!(x.binary_diff(one), 0);
    }

    #[test]
    fn any_diff_sees_x_transitions() {
        let zero = Pv64::ALL_ZERO;
        let x = Pv64::ALL_X;
        assert_eq!(zero.any_diff(x), !0);
        assert_eq!(x.any_diff(x), 0);
        assert_eq!(zero.any_diff(zero), 0);
    }

    #[test]
    fn force_overrides_only_masked_slots() {
        let w = Pv64::ALL_ZERO.force(0b101, Logic::One);
        assert_eq!(w.get(0), Logic::One);
        assert_eq!(w.get(1), Logic::Zero);
        assert_eq!(w.get(2), Logic::One);
        assert_eq!(w.get(3), Logic::Zero);
        let x = w.force(0b10, Logic::X);
        assert_eq!(x.get(1), Logic::X);
    }

    #[test]
    fn known_mask_tracks_binary_slots() {
        let mut w = Pv64::ALL_X;
        w.set(5, Logic::One);
        w.set(9, Logic::Zero);
        assert_eq!(w.known_mask(), (1 << 5) | (1 << 9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Logic::X.to_string(), "x");
        let mut w = Pv64::ALL_ZERO;
        w.set(1, Logic::One);
        let s = w.to_string();
        assert!(s.starts_with("010"));
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn backend_parse_and_resolution() {
        assert_eq!(SimBackend::parse("scalar64"), Some(SimBackend::Scalar64));
        assert_eq!(SimBackend::parse("wide256"), Some(SimBackend::Wide256));
        assert_eq!(SimBackend::parse("wide512"), Some(SimBackend::Wide512));
        assert_eq!(SimBackend::parse("auto"), Some(SimBackend::Auto));
        assert_eq!(SimBackend::parse("1024"), None);
        // Auto stays at 256 lanes: wide512 is opt-in (see `resolved`).
        assert_eq!(SimBackend::Auto.resolved(), SimBackend::Wide256);
        assert_eq!(SimBackend::Auto.lanes(), 256);
        assert_eq!(SimBackend::Scalar64.lanes(), 64);
        assert_eq!(SimBackend::Wide512.lanes(), 512);
        assert_eq!(SimBackend::Auto.name(), "wide256");
        assert_eq!(SimBackend::Wide512.name(), "wide512");
        assert_eq!(SimBackend::Scalar64.to_string(), "scalar64");
        assert!("bogus".parse::<SimBackend>().is_err());
        assert_eq!("256".parse::<SimBackend>(), Ok(SimBackend::Wide256));
        assert_eq!("512".parse::<SimBackend>(), Ok(SimBackend::Wide512));
    }

    /// A deterministic per-lane value pattern: three-valued, cycling with a
    /// lane- and salt-dependent phase so neighbouring lanes (and words)
    /// differ.
    fn pattern(lane: usize, salt: usize) -> Logic {
        VALUES[(lane.wrapping_mul(2654435761) >> 3).wrapping_add(salt) % 3]
    }

    /// The width-generic backend suite: every operation pinned to scalar
    /// [`Logic`] semantics in *every* lane, plus force/diff mask round
    /// trips. New widths implement [`PackedValue`] and instantiate the
    /// macro to inherit the whole suite.
    macro_rules! packed_backend_suite {
        ($name:ident, $ty:ty) => {
            mod $name {
                use super::*;

                type M = <$ty as PackedValue>::Mask;

                fn patterned(salt: usize) -> $ty {
                    let mut w = <$ty>::ALL_X;
                    for lane in 0..<$ty>::LANES {
                        w.set_lane(lane, pattern(lane, salt));
                    }
                    w
                }

                #[test]
                fn broadcast_and_lane_round_trip() {
                    for &v in &VALUES {
                        let w = <$ty>::broadcast(v);
                        for lane in 0..<$ty>::LANES {
                            assert_eq!(w.get_lane(lane), v, "lane {lane}");
                        }
                    }
                    let w = patterned(7);
                    assert!(w.is_valid());
                    for lane in 0..<$ty>::LANES {
                        assert_eq!(w.get_lane(lane), pattern(lane, 7), "lane {lane}");
                    }
                }

                #[test]
                fn ops_agree_with_scalar_in_every_lane() {
                    let a = patterned(0);
                    let b = patterned(1);
                    for lane in 0..<$ty>::LANES {
                        let (x, y) = (a.get_lane(lane), b.get_lane(lane));
                        assert_eq!(a.and(b).get_lane(lane), x & y, "and lane {lane}");
                        assert_eq!(a.or(b).get_lane(lane), x | y, "or lane {lane}");
                        assert_eq!(a.xor(b).get_lane(lane), x ^ y, "xor lane {lane}");
                        assert_eq!(a.not().get_lane(lane), !x, "not lane {lane}");
                    }
                    assert!(a.and(b).is_valid() && a.xor(b).is_valid());
                }

                #[test]
                fn eval_gate_agrees_with_scalar_in_every_lane() {
                    use crate::eval::eval_scalar;
                    let fanin = [patterned(0), patterned(1), patterned(2)];
                    for kind in [
                        GateKind::And,
                        GateKind::Nand,
                        GateKind::Or,
                        GateKind::Nor,
                        GateKind::Xor,
                        GateKind::Xnor,
                        GateKind::Not,
                        GateKind::Buf,
                        GateKind::Const0,
                        GateKind::Const1,
                    ] {
                        let arity = match kind {
                            GateKind::Not | GateKind::Buf => 1,
                            GateKind::Const0 | GateKind::Const1 => 0,
                            _ => 3,
                        };
                        let packed = <$ty>::eval_gate(kind, &fanin[..arity]);
                        assert!(packed.is_valid(), "{kind}");
                        for lane in 0..<$ty>::LANES {
                            let scalar: Vec<Logic> =
                                fanin[..arity].iter().map(|w| w.get_lane(lane)).collect();
                            assert_eq!(
                                packed.get_lane(lane),
                                eval_scalar(kind, &scalar),
                                "{kind} lane {lane}"
                            );
                        }
                    }
                }

                #[test]
                fn diff_masks_match_per_lane_comparison() {
                    let a = patterned(3);
                    let b = patterned(4);
                    let binary = a.binary_diff(b);
                    let any = a.any_diff(b);
                    let known = a.known_mask();
                    for lane in 0..<$ty>::LANES {
                        let (x, y) = (a.get_lane(lane), b.get_lane(lane));
                        let both_known_opposite = x.is_known() && y.is_known() && x != y;
                        assert_eq!(binary.test(lane), both_known_opposite, "lane {lane}");
                        assert_eq!(any.test(lane), x != y, "any lane {lane}");
                        assert_eq!(known.test(lane), x.is_known(), "known lane {lane}");
                    }
                    assert_eq!(a.any_diff(a), M::EMPTY);
                    assert_eq!(a.binary_diff(a), M::EMPTY);
                }

                #[test]
                fn force_round_trips_through_masks() {
                    let w = patterned(5);
                    for &v in &VALUES {
                        // Force every third lane, then read the change back
                        // through any_diff: exactly the masked lanes whose
                        // value actually changed must differ.
                        let mut mask = M::EMPTY;
                        for lane in (0..<$ty>::LANES).step_by(3) {
                            mask = mask.or(M::bit(lane));
                        }
                        let forced = w.force(mask, v);
                        assert!(forced.is_valid());
                        for lane in 0..<$ty>::LANES {
                            let expect = if mask.test(lane) { v } else { w.get_lane(lane) };
                            assert_eq!(forced.get_lane(lane), expect, "lane {lane}");
                            assert_eq!(
                                forced.any_diff(w).test(lane),
                                expect != w.get_lane(lane),
                                "diff lane {lane}"
                            );
                        }
                        // Re-forcing the original lane values undoes the edit.
                        let mut undone = forced;
                        mask.for_each(|lane| undone.set_lane(lane, w.get_lane(lane)));
                        assert_eq!(undone, w);
                    }
                }

                #[test]
                fn lane_mask_primitives_round_trip() {
                    assert_eq!(M::low(0), M::EMPTY);
                    assert!(!M::EMPTY.any());
                    assert_eq!(M::EMPTY.count(), 0);
                    assert_eq!(M::EMPTY.first(), None);
                    let full = M::low(<$ty>::LANES);
                    assert_eq!(full.count() as usize, <$ty>::LANES);
                    for n in [1usize, 2, <$ty>::LANES / 2 + 1, <$ty>::LANES] {
                        let m = M::low(n);
                        assert_eq!(m.count() as usize, n);
                        assert_eq!(m.first(), Some(0));
                        let mut seen = Vec::new();
                        m.for_each(|lane| seen.push(lane));
                        let expect: Vec<usize> = (0..n).collect();
                        assert_eq!(seen, expect, "low({n}) iterates ascending");
                    }
                    let lane = <$ty>::LANES - 2;
                    let m = M::bit(lane);
                    assert!(m.test(lane) && !m.test(0));
                    assert_eq!(m.first(), Some(lane));
                    assert_eq!(m.or(M::bit(0)).count(), 2);
                    assert_eq!(m.and(M::bit(0)), M::EMPTY);
                    // Complement: disjoint from the original, and together
                    // they cover every lane position.
                    assert_eq!(m.and(m.invert()), M::EMPTY);
                    assert_eq!(m.or(m.invert()).count() as usize, M::WORDS * 64);
                    assert_eq!(full.and(full.invert()), M::EMPTY);
                    assert!(M::EMPTY.invert().test(0));
                }

                #[test]
                fn soa_plane_storage_round_trips() {
                    let mut zero = vec![0u64; <$ty>::WORDS * 3];
                    let mut one = vec![0u64; <$ty>::WORDS * 3];
                    let values = [patterned(8), patterned(9), patterned(10)];
                    for (i, w) in values.iter().enumerate() {
                        let at = i * <$ty>::WORDS;
                        w.store_planes(&mut zero[at..], &mut one[at..]);
                    }
                    for (i, w) in values.iter().enumerate() {
                        let at = i * <$ty>::WORDS;
                        assert_eq!(<$ty>::load_planes(&zero[at..], &one[at..]), *w);
                    }
                }
            }
        };
    }

    packed_backend_suite!(pv64_backend, Pv64);
    packed_backend_suite!(pv256_backend, Pv256);
    packed_backend_suite!(pv512_backend, Pv512);

    #[test]
    fn pv256_lanes_mirror_four_pv64_words() {
        // A Pv256 is bit-for-bit four Pv64s laid side by side: lane 64w+i of
        // the wide word equals slot i of word w.
        let mut wide = Pv256::ALL_X;
        let mut narrow = [Pv64::ALL_X; 4];
        for lane in 0..256 {
            let v = pattern(lane, 11);
            wide.set_lane(lane, v);
            narrow[lane / 64].set((lane % 64) as u32, v);
        }
        for (w, n) in narrow.iter().enumerate() {
            assert_eq!(wide.zero[w], n.zero);
            assert_eq!(wide.one[w], n.one);
        }
    }

    #[test]
    fn pv512_lanes_mirror_eight_pv64_words() {
        // Likewise, a Pv512 is eight Pv64s laid side by side.
        let mut wide = Pv512::ALL_X;
        let mut narrow = [Pv64::ALL_X; 8];
        for lane in 0..512 {
            let v = pattern(lane, 13);
            wide.set_lane(lane, v);
            narrow[lane / 64].set((lane % 64) as u32, v);
        }
        for (w, n) in narrow.iter().enumerate() {
            assert_eq!(wide.zero[w], n.zero);
            assert_eq!(wide.one[w], n.one);
        }
    }
}
