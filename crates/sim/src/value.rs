//! Three-valued logic (0 / 1 / X) — scalar and 64-way bit-parallel.
//!
//! The packed representation follows PROOFS: each signal carries two 64-bit
//! planes, `zero` and `one`. Bit *i* of the planes encodes the value seen by
//! parallel slot *i* (one fault, or one pattern, per slot):
//!
//! | `zero` | `one` | value |
//! |--------|-------|-------|
//! | 1      | 0     | 0     |
//! | 0      | 1     | 1     |
//! | 0      | 0     | X     |
//! | 1      | 1     | *invalid* |
//!
//! With this encoding every gate function is a handful of word operations,
//! e.g. `AND`: `one = a.one & b.one`, `zero = a.zero | b.zero`.

use std::fmt;
use std::ops::Not;

/// A scalar three-valued logic value.
///
/// # Example
///
/// ```
/// use gatest_sim::Logic;
///
/// assert_eq!(Logic::Zero & Logic::X, Logic::Zero);
/// assert_eq!(Logic::One & Logic::X, Logic::X);
/// assert_eq!(!Logic::X, Logic::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    #[default]
    X,
}

impl Logic {
    /// Converts a `bool` to `Zero`/`One`.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns `Some(bool)` for binary values, `None` for X.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// Returns `true` if the value is 0 or 1 (not X).
    #[inline]
    pub fn is_known(self) -> bool {
        self != Logic::X
    }

    /// Three-valued AND.
    #[inline]
    pub fn and(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Three-valued OR.
    #[inline]
    pub fn or(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Three-valued XOR.
    #[inline]
    pub fn xor(self, other: Logic) -> Logic {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a ^ b),
            _ => Logic::X,
        }
    }
}

impl Not for Logic {
    type Output = Logic;

    #[inline]
    fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }
}

impl std::ops::BitAnd for Logic {
    type Output = Logic;
    #[inline]
    fn bitand(self, rhs: Logic) -> Logic {
        self.and(rhs)
    }
}

impl std::ops::BitOr for Logic {
    type Output = Logic;
    #[inline]
    fn bitor(self, rhs: Logic) -> Logic {
        self.or(rhs)
    }
}

impl std::ops::BitXor for Logic {
    type Output = Logic;
    #[inline]
    fn bitxor(self, rhs: Logic) -> Logic {
        self.xor(rhs)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
        };
        write!(f, "{c}")
    }
}

/// A packed word of 64 three-valued values (one per parallel slot).
///
/// # Example
///
/// ```
/// use gatest_sim::{Logic, Pv64};
///
/// let mut w = Pv64::broadcast(Logic::One);
/// w.set(3, Logic::Zero);
/// w.set(7, Logic::X);
/// assert_eq!(w.get(0), Logic::One);
/// assert_eq!(w.get(3), Logic::Zero);
/// assert_eq!(w.get(7), Logic::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pv64 {
    /// Plane of slots holding logic 0.
    pub zero: u64,
    /// Plane of slots holding logic 1.
    pub one: u64,
}

impl Pv64 {
    /// All 64 slots X.
    pub const ALL_X: Pv64 = Pv64 { zero: 0, one: 0 };

    /// All 64 slots 0.
    pub const ALL_ZERO: Pv64 = Pv64 { zero: !0, one: 0 };

    /// All 64 slots 1.
    pub const ALL_ONE: Pv64 = Pv64 { zero: 0, one: !0 };

    /// A word with every slot set to `v`.
    #[inline]
    pub fn broadcast(v: Logic) -> Pv64 {
        match v {
            Logic::Zero => Pv64::ALL_ZERO,
            Logic::One => Pv64::ALL_ONE,
            Logic::X => Pv64::ALL_X,
        }
    }

    /// The value in slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[inline]
    pub fn get(self, i: u32) -> Logic {
        assert!(i < 64);
        let z = (self.zero >> i) & 1;
        let o = (self.one >> i) & 1;
        match (z, o) {
            (1, 0) => Logic::Zero,
            (0, 1) => Logic::One,
            (0, 0) => Logic::X,
            _ => unreachable!("invalid Pv64 encoding in slot {i}"),
        }
    }

    /// Sets slot `i` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[inline]
    pub fn set(&mut self, i: u32, v: Logic) {
        assert!(i < 64);
        let bit = 1u64 << i;
        self.zero &= !bit;
        self.one &= !bit;
        match v {
            Logic::Zero => self.zero |= bit,
            Logic::One => self.one |= bit,
            Logic::X => {}
        }
    }

    /// Three-valued AND of two words.
    #[inline]
    pub fn and(self, rhs: Pv64) -> Pv64 {
        Pv64 {
            zero: self.zero | rhs.zero,
            one: self.one & rhs.one,
        }
    }

    /// Three-valued OR of two words.
    #[inline]
    pub fn or(self, rhs: Pv64) -> Pv64 {
        Pv64 {
            zero: self.zero & rhs.zero,
            one: self.one | rhs.one,
        }
    }

    /// Three-valued XOR of two words (X wherever either side is X).
    #[inline]
    pub fn xor(self, rhs: Pv64) -> Pv64 {
        Pv64 {
            zero: (self.zero & rhs.zero) | (self.one & rhs.one),
            one: (self.zero & rhs.one) | (self.one & rhs.zero),
        }
    }

    /// Three-valued NOT.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn not(self) -> Pv64 {
        Pv64 {
            zero: self.one,
            one: self.zero,
        }
    }

    /// Slots where both words hold *binary* values that differ.
    ///
    /// This is PROOFS's detection criterion at primary outputs: the fault is
    /// detected only where the good and faulty values are both known and
    /// opposite.
    #[inline]
    pub fn binary_diff(self, rhs: Pv64) -> u64 {
        (self.zero & rhs.one) | (self.one & rhs.zero)
    }

    /// Slots where the two words differ at all (including binary vs. X).
    #[inline]
    pub fn any_diff(self, rhs: Pv64) -> u64 {
        (self.zero ^ rhs.zero) | (self.one ^ rhs.one)
    }

    /// Slots holding a known (binary) value.
    #[inline]
    pub fn known_mask(self) -> u64 {
        self.zero | self.one
    }

    /// Returns `true` if no slot has both planes set (the invalid encoding).
    #[inline]
    pub fn is_valid(self) -> bool {
        self.zero & self.one == 0
    }

    /// Forces the slots in `mask` to `v`, leaving other slots untouched.
    #[inline]
    pub fn force(self, mask: u64, v: Logic) -> Pv64 {
        let mut out = Pv64 {
            zero: self.zero & !mask,
            one: self.one & !mask,
        };
        match v {
            Logic::Zero => out.zero |= mask,
            Logic::One => out.one |= mask,
            Logic::X => {}
        }
        out
    }
}

impl fmt::Display for Pv64 {
    /// Slot 0 first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..64 {
            write!(f, "{}", self.get(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALUES: [Logic; 3] = [Logic::Zero, Logic::One, Logic::X];

    #[test]
    fn scalar_and_truth_table() {
        use Logic::*;
        assert_eq!(Zero & Zero, Zero);
        assert_eq!(Zero & One, Zero);
        assert_eq!(Zero & X, Zero);
        assert_eq!(One & One, One);
        assert_eq!(One & X, X);
        assert_eq!(X & X, X);
    }

    #[test]
    fn scalar_or_truth_table() {
        use Logic::*;
        assert_eq!(One | Zero, One);
        assert_eq!(One | X, One);
        assert_eq!(Zero | Zero, Zero);
        assert_eq!(Zero | X, X);
        assert_eq!(X | X, X);
    }

    #[test]
    fn scalar_xor_truth_table() {
        use Logic::*;
        assert_eq!(Zero ^ One, One);
        assert_eq!(One ^ One, Zero);
        assert_eq!(One ^ X, X);
        assert_eq!(X ^ X, X);
    }

    #[test]
    fn scalar_not() {
        assert_eq!(!Logic::Zero, Logic::One);
        assert_eq!(!Logic::One, Logic::Zero);
        assert_eq!(!Logic::X, Logic::X);
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from_bool(true).to_bool(), Some(true));
        assert_eq!(Logic::from_bool(false).to_bool(), Some(false));
        assert_eq!(Logic::X.to_bool(), None);
    }

    #[test]
    fn packed_get_set_round_trip() {
        let mut w = Pv64::ALL_X;
        for (i, &v) in [Logic::Zero, Logic::One, Logic::X, Logic::One]
            .iter()
            .enumerate()
        {
            w.set(i as u32, v);
        }
        assert_eq!(w.get(0), Logic::Zero);
        assert_eq!(w.get(1), Logic::One);
        assert_eq!(w.get(2), Logic::X);
        assert_eq!(w.get(3), Logic::One);
        assert_eq!(w.get(60), Logic::X);
        assert!(w.is_valid());
    }

    #[test]
    fn packed_ops_agree_with_scalar() {
        // Exhaustive per-slot agreement between packed and scalar operators.
        for &a in &VALUES {
            for &b in &VALUES {
                let wa = Pv64::broadcast(a);
                let wb = Pv64::broadcast(b);
                assert_eq!(wa.and(wb).get(17), a & b, "and({a},{b})");
                assert_eq!(wa.or(wb).get(17), a | b, "or({a},{b})");
                assert_eq!(wa.xor(wb).get(17), a ^ b, "xor({a},{b})");
                assert_eq!(wa.not().get(17), !a, "not({a})");
                assert!(wa.and(wb).is_valid());
                assert!(wa.xor(wb).is_valid());
            }
        }
    }

    #[test]
    fn binary_diff_requires_both_known() {
        let zero = Pv64::ALL_ZERO;
        let one = Pv64::ALL_ONE;
        let x = Pv64::ALL_X;
        assert_eq!(zero.binary_diff(one), !0);
        assert_eq!(zero.binary_diff(zero), 0);
        assert_eq!(zero.binary_diff(x), 0);
        assert_eq!(x.binary_diff(one), 0);
    }

    #[test]
    fn any_diff_sees_x_transitions() {
        let zero = Pv64::ALL_ZERO;
        let x = Pv64::ALL_X;
        assert_eq!(zero.any_diff(x), !0);
        assert_eq!(x.any_diff(x), 0);
        assert_eq!(zero.any_diff(zero), 0);
    }

    #[test]
    fn force_overrides_only_masked_slots() {
        let w = Pv64::ALL_ZERO.force(0b101, Logic::One);
        assert_eq!(w.get(0), Logic::One);
        assert_eq!(w.get(1), Logic::Zero);
        assert_eq!(w.get(2), Logic::One);
        assert_eq!(w.get(3), Logic::Zero);
        let x = w.force(0b10, Logic::X);
        assert_eq!(x.get(1), Logic::X);
    }

    #[test]
    fn known_mask_tracks_binary_slots() {
        let mut w = Pv64::ALL_X;
        w.set(5, Logic::One);
        w.set(9, Logic::Zero);
        assert_eq!(w.known_mask(), (1 << 5) | (1 << 9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Logic::X.to_string(), "x");
        let mut w = Pv64::ALL_ZERO;
        w.set(1, Logic::One);
        let s = w.to_string();
        assert!(s.starts_with("010"));
        assert_eq!(s.len(), 64);
    }
}
