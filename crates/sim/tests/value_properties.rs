//! Property-based tests for the packed three-valued logic layer.

use proptest::prelude::*;

use gatest_netlist::GateKind;
use gatest_sim::eval::{eval_packed, eval_scalar};
use gatest_sim::{Logic, Pv64};

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop_oneof![Just(Logic::Zero), Just(Logic::One), Just(Logic::X)]
}

fn arb_word() -> impl Strategy<Value = Vec<Logic>> {
    proptest::collection::vec(arb_logic(), 64)
}

fn pack(values: &[Logic]) -> Pv64 {
    let mut w = Pv64::ALL_X;
    for (i, &v) in values.iter().enumerate() {
        w.set(i as u32, v);
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Packing and unpacking are inverse for every slot pattern.
    #[test]
    fn pack_round_trips(values in arb_word()) {
        let w = pack(&values);
        prop_assert!(w.is_valid());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(w.get(i as u32), v);
        }
    }

    /// Every packed gate evaluation agrees with the scalar evaluation in
    /// every slot, for arbitrary mixed-value words and arities 1-4.
    #[test]
    fn packed_eval_matches_scalar(
        inputs in proptest::collection::vec(arb_word(), 1..5),
        kind_idx in 0usize..8,
    ) {
        let kinds = [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ];
        let kind = kinds[kind_idx];
        let arity = match kind {
            GateKind::Not | GateKind::Buf => 1,
            _ => inputs.len(),
        };
        let words: Vec<Pv64> = inputs.iter().take(arity).map(|v| pack(v)).collect();
        let packed = eval_packed(kind, &words);
        prop_assert!(packed.is_valid());
        for slot in 0..64u32 {
            let scalar_in: Vec<Logic> = inputs
                .iter()
                .take(arity)
                .map(|v| v[slot as usize])
                .collect();
            prop_assert_eq!(
                packed.get(slot),
                eval_scalar(kind, &scalar_in),
                "{:?} slot {}", kind, slot
            );
        }
    }

    /// binary_diff is symmetric, implied by any_diff, and zero on equal
    /// words.
    #[test]
    fn diff_mask_properties(a in arb_word(), b in arb_word()) {
        let wa = pack(&a);
        let wb = pack(&b);
        prop_assert_eq!(wa.binary_diff(wb), wb.binary_diff(wa));
        prop_assert_eq!(wa.binary_diff(wb) & !wa.any_diff(wb), 0);
        prop_assert_eq!(wa.any_diff(wa), 0);
        // Per-slot agreement with the scalar definition.
        for slot in 0..64u32 {
            let (x, y) = (a[slot as usize], b[slot as usize]);
            let strict = x.is_known() && y.is_known() && x != y;
            prop_assert_eq!(wa.binary_diff(wb) >> slot & 1 == 1, strict);
            prop_assert_eq!(wa.any_diff(wb) >> slot & 1 == 1, x != y);
        }
    }

    /// force() touches exactly the masked slots.
    #[test]
    fn force_is_surgical(values in arb_word(), mask in any::<u64>(), v in arb_logic()) {
        let w = pack(&values);
        let forced = w.force(mask, v);
        prop_assert!(forced.is_valid());
        for slot in 0..64u32 {
            if mask >> slot & 1 == 1 {
                prop_assert_eq!(forced.get(slot), v);
            } else {
                prop_assert_eq!(forced.get(slot), w.get(slot));
            }
        }
    }

    /// De Morgan in three-valued logic: !(a & b) == (!a | !b), packed.
    #[test]
    fn de_morgan_holds(a in arb_word(), b in arb_word()) {
        let wa = pack(&a);
        let wb = pack(&b);
        prop_assert_eq!(wa.and(wb).not(), wa.not().or(wb.not()));
        prop_assert_eq!(wa.or(wb).not(), wa.not().and(wb.not()));
    }
}
