//! Lock-free counters sampled from the fault simulator's hot paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Accumulating counters for simulator activity.
///
/// All updates use relaxed atomics: the counters are monotone event tallies
/// with no ordering relationship to any other memory, so relaxed ordering is
/// sufficient and keeps the hot-path cost to a handful of uncontended
/// `fetch_add`s per simulated *vector* (never per gate). The struct is
/// shared via `Arc` between a [`FaultSim`](../../gatest_sim) and its clones,
/// so parallel fitness workers aggregate into one place.
#[derive(Debug, Default)]
pub struct SimCounters {
    /// Full or sampled fault-simulation steps (`step` / `step_sampled`).
    pub step_calls: AtomicU64,
    /// Good-machine-only steps (`step_good_only`).
    pub good_only_calls: AtomicU64,
    /// Packed faulty-gate evaluations plus good-machine gate evaluations.
    pub gate_evals: AtomicU64,
    /// Good-circuit events (net value changes).
    pub good_events: AtomicU64,
    /// Faulty-circuit events summed over all simulated faulty machines.
    pub faulty_events: AtomicU64,
    /// Checkpoint restores (one per candidate evaluation in the GA loop).
    pub checkpoint_restores: AtomicU64,
    /// Estimated bytes the copy-on-write restores did *not* copy compared
    /// to a deep-copy restore of the same checkpoints (fault status, active
    /// list, and sparse faulty-FF state).
    pub restore_bytes_avoided: AtomicU64,
    /// 64-slot packed good-machine frames evaluated for phase-1 fitness.
    pub packed_phase1_frames: AtomicU64,
    /// Evaluation-batch chunks dispatched to persistent pool workers.
    pub pool_tasks: AtomicU64,
    /// Nanoseconds pool workers spent waiting for work (summed over
    /// workers; compare against wall-clock × workers for utilization).
    pub pool_idle_ns: AtomicU64,
    /// Pv64 fault groups dispatched to the fault-group-parallel sim pool
    /// (serial steps dispatch none).
    pub group_tasks: AtomicU64,
    /// Nanoseconds fault-group workers spent between job publication and
    /// claiming their first group of each parallel step (wake/steal
    /// latency, summed over workers).
    pub group_steal_ns: AtomicU64,
    /// Bytes served from reusable simulator scratch buffers (gate fanin
    /// words, forcing-table entries, faulty-FF state builders) that the
    /// pre-arena simulator allocated fresh on every use.
    pub scratch_bytes_reused: AtomicU64,
    /// Run-state checkpoint files written (cadence + final writes).
    pub checkpoint_writes: AtomicU64,
    /// Total bytes of checkpoint files written.
    pub checkpoint_bytes: AtomicU64,
    /// Candidate evaluations answered from the epoch-keyed fitness cache
    /// (each hit is one whole fault-sim pass skipped).
    pub cache_hits: AtomicU64,
    /// Fitness-cache lookups that missed and had to simulate.
    pub cache_misses: AtomicU64,
    /// Candidates skipped because an identical chromosome appeared earlier
    /// in the same evaluation batch (the score is shared, not resimulated).
    pub dedup_skips: AtomicU64,
    /// Sequence-evaluation frames not simulated thanks to prefix sharing:
    /// candidates with a common k-vector prefix pay for those frames once.
    pub prefix_frames_avoided: AtomicU64,
    /// Fault groups simulated by a wide (more-than-64-lane) packed backend.
    /// Zero for scalar64 runs, so old traces and narrow runs render alike.
    pub wide_groups: AtomicU64,
    /// Lanes per packed fault group of the wide backend (e.g. 256). A
    /// last-write-wins gauge, not a tally: it names the backend width.
    pub lanes_per_group: AtomicU64,
    /// Faulty-circuit events beyond the first lane of each changed packed
    /// word: lanes that rode an evaluation another lane already paid for.
    /// Zero for scalar runs of single-lane groups; grows with lane width.
    pub events_amortized: AtomicU64,
    /// Vectors committed through the batched window path
    /// (`FaultSim::step_window`) rather than one `step` call each.
    pub commit_batch_frames: AtomicU64,
    /// Bytes of the levelized CSR adjacency arena (schedule-ordered fanin
    /// records plus per-net fanout edges). A last-write-wins gauge.
    pub csr_bytes: AtomicU64,
}

impl SimCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        SimCounters::default()
    }

    /// Records one full/sampled fault-simulation step.
    #[inline]
    pub fn record_step(&self, gate_evals: u64, good_events: u64, faulty_events: u64) {
        self.step_calls.fetch_add(1, Ordering::Relaxed);
        self.gate_evals.fetch_add(gate_evals, Ordering::Relaxed);
        self.good_events.fetch_add(good_events, Ordering::Relaxed);
        self.faulty_events
            .fetch_add(faulty_events, Ordering::Relaxed);
    }

    /// Records one good-machine-only step.
    #[inline]
    pub fn record_good_only(&self, gate_evals: u64, good_events: u64) {
        self.good_only_calls.fetch_add(1, Ordering::Relaxed);
        self.gate_evals.fetch_add(gate_evals, Ordering::Relaxed);
        self.good_events.fetch_add(good_events, Ordering::Relaxed);
    }

    /// Records one checkpoint restore and the deep-copy bytes it avoided.
    #[inline]
    pub fn record_restore(&self, bytes_avoided: u64) {
        self.checkpoint_restores.fetch_add(1, Ordering::Relaxed);
        self.restore_bytes_avoided
            .fetch_add(bytes_avoided, Ordering::Relaxed);
    }

    /// Records packed good-machine frames evaluated for phase-1 fitness.
    #[inline]
    pub fn record_packed_phase1(&self, frames: u64) {
        self.packed_phase1_frames
            .fetch_add(frames, Ordering::Relaxed);
    }

    /// Records evaluation chunks dispatched to pool workers.
    #[inline]
    pub fn record_pool_tasks(&self, tasks: u64) {
        self.pool_tasks.fetch_add(tasks, Ordering::Relaxed);
    }

    /// Records time a pool worker spent idle waiting for work.
    #[inline]
    pub fn record_pool_idle(&self, nanos: u64) {
        self.pool_idle_ns.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records one parallel step's fault-group dispatch: groups run by the
    /// sim pool and the summed worker wake/steal latency.
    #[inline]
    pub fn record_group_dispatch(&self, groups: u64, steal_ns: u64) {
        self.group_tasks.fetch_add(groups, Ordering::Relaxed);
        self.group_steal_ns.fetch_add(steal_ns, Ordering::Relaxed);
    }

    /// Records bytes served from reusable simulator scratch buffers.
    #[inline]
    pub fn record_scratch_reuse(&self, bytes: u64) {
        self.scratch_bytes_reused
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one run-state checkpoint file written and its size.
    #[inline]
    pub fn record_checkpoint_write(&self, bytes: u64) {
        self.checkpoint_writes.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one evaluation batch's fitness-cache outcome: scores served
    /// from the cache and lookups that fell through to simulation.
    #[inline]
    pub fn record_cache_outcome(&self, hits: u64, misses: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Records candidates deduplicated away within one evaluation batch.
    #[inline]
    pub fn record_dedup_skips(&self, skips: u64) {
        self.dedup_skips.fetch_add(skips, Ordering::Relaxed);
    }

    /// Records sequence frames skipped by prefix-sharing evaluation.
    #[inline]
    pub fn record_prefix_frames_avoided(&self, frames: u64) {
        self.prefix_frames_avoided
            .fetch_add(frames, Ordering::Relaxed);
    }

    /// Records fault groups simulated by a wide packed backend: `groups`
    /// accumulates, `lanes` is stored as the backend's lane width.
    #[inline]
    pub fn record_backend_groups(&self, lanes: u64, groups: u64) {
        self.wide_groups.fetch_add(groups, Ordering::Relaxed);
        self.lanes_per_group.store(lanes, Ordering::Relaxed);
    }

    /// Records faulty events that shared a packed evaluation with another
    /// lane (every lane after the first of each changed word).
    #[inline]
    pub fn record_events_amortized(&self, events: u64) {
        self.events_amortized.fetch_add(events, Ordering::Relaxed);
    }

    /// Records vectors committed through the batched window path.
    #[inline]
    pub fn record_commit_batch(&self, frames: u64) {
        self.commit_batch_frames
            .fetch_add(frames, Ordering::Relaxed);
    }

    /// Stores the CSR adjacency arena size (a gauge, not a tally).
    #[inline]
    pub fn record_csr_bytes(&self, bytes: u64) {
        self.csr_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Overwrites every counter with the totals in `snapshot`, so a resumed
    /// run continues accumulating from where the checkpointed run stopped.
    pub fn load_snapshot(&self, snapshot: &CounterSnapshot) {
        self.step_calls
            .store(snapshot.step_calls, Ordering::Relaxed);
        self.good_only_calls
            .store(snapshot.good_only_calls, Ordering::Relaxed);
        self.gate_evals
            .store(snapshot.gate_evals, Ordering::Relaxed);
        self.good_events
            .store(snapshot.good_events, Ordering::Relaxed);
        self.faulty_events
            .store(snapshot.faulty_events, Ordering::Relaxed);
        self.checkpoint_restores
            .store(snapshot.checkpoint_restores, Ordering::Relaxed);
        self.restore_bytes_avoided
            .store(snapshot.restore_bytes_avoided, Ordering::Relaxed);
        self.packed_phase1_frames
            .store(snapshot.packed_phase1_frames, Ordering::Relaxed);
        self.pool_tasks
            .store(snapshot.pool_tasks, Ordering::Relaxed);
        self.pool_idle_ns
            .store(snapshot.pool_idle_ns, Ordering::Relaxed);
        self.group_tasks
            .store(snapshot.group_tasks, Ordering::Relaxed);
        self.group_steal_ns
            .store(snapshot.group_steal_ns, Ordering::Relaxed);
        self.scratch_bytes_reused
            .store(snapshot.scratch_bytes_reused, Ordering::Relaxed);
        self.checkpoint_writes
            .store(snapshot.checkpoint_writes, Ordering::Relaxed);
        self.checkpoint_bytes
            .store(snapshot.checkpoint_bytes, Ordering::Relaxed);
        self.cache_hits
            .store(snapshot.cache_hits, Ordering::Relaxed);
        self.cache_misses
            .store(snapshot.cache_misses, Ordering::Relaxed);
        self.dedup_skips
            .store(snapshot.dedup_skips, Ordering::Relaxed);
        self.prefix_frames_avoided
            .store(snapshot.prefix_frames_avoided, Ordering::Relaxed);
        self.wide_groups
            .store(snapshot.wide_groups, Ordering::Relaxed);
        self.lanes_per_group
            .store(snapshot.lanes_per_group, Ordering::Relaxed);
        self.events_amortized
            .store(snapshot.events_amortized, Ordering::Relaxed);
        self.commit_batch_frames
            .store(snapshot.commit_batch_frames, Ordering::Relaxed);
        self.csr_bytes.store(snapshot.csr_bytes, Ordering::Relaxed);
    }

    /// A plain-integer copy of the current totals.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            step_calls: self.step_calls.load(Ordering::Relaxed),
            good_only_calls: self.good_only_calls.load(Ordering::Relaxed),
            gate_evals: self.gate_evals.load(Ordering::Relaxed),
            good_events: self.good_events.load(Ordering::Relaxed),
            faulty_events: self.faulty_events.load(Ordering::Relaxed),
            checkpoint_restores: self.checkpoint_restores.load(Ordering::Relaxed),
            restore_bytes_avoided: self.restore_bytes_avoided.load(Ordering::Relaxed),
            packed_phase1_frames: self.packed_phase1_frames.load(Ordering::Relaxed),
            pool_tasks: self.pool_tasks.load(Ordering::Relaxed),
            pool_idle_ns: self.pool_idle_ns.load(Ordering::Relaxed),
            group_tasks: self.group_tasks.load(Ordering::Relaxed),
            group_steal_ns: self.group_steal_ns.load(Ordering::Relaxed),
            scratch_bytes_reused: self.scratch_bytes_reused.load(Ordering::Relaxed),
            checkpoint_writes: self.checkpoint_writes.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            dedup_skips: self.dedup_skips.load(Ordering::Relaxed),
            prefix_frames_avoided: self.prefix_frames_avoided.load(Ordering::Relaxed),
            wide_groups: self.wide_groups.load(Ordering::Relaxed),
            lanes_per_group: self.lanes_per_group.load(Ordering::Relaxed),
            events_amortized: self.events_amortized.load(Ordering::Relaxed),
            commit_batch_frames: self.commit_batch_frames.load(Ordering::Relaxed),
            csr_bytes: self.csr_bytes.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.step_calls.store(0, Ordering::Relaxed);
        self.good_only_calls.store(0, Ordering::Relaxed);
        self.gate_evals.store(0, Ordering::Relaxed);
        self.good_events.store(0, Ordering::Relaxed);
        self.faulty_events.store(0, Ordering::Relaxed);
        self.checkpoint_restores.store(0, Ordering::Relaxed);
        self.restore_bytes_avoided.store(0, Ordering::Relaxed);
        self.packed_phase1_frames.store(0, Ordering::Relaxed);
        self.pool_tasks.store(0, Ordering::Relaxed);
        self.pool_idle_ns.store(0, Ordering::Relaxed);
        self.group_tasks.store(0, Ordering::Relaxed);
        self.group_steal_ns.store(0, Ordering::Relaxed);
        self.scratch_bytes_reused.store(0, Ordering::Relaxed);
        self.checkpoint_writes.store(0, Ordering::Relaxed);
        self.checkpoint_bytes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.dedup_skips.store(0, Ordering::Relaxed);
        self.prefix_frames_avoided.store(0, Ordering::Relaxed);
        self.wide_groups.store(0, Ordering::Relaxed);
        self.lanes_per_group.store(0, Ordering::Relaxed);
        self.events_amortized.store(0, Ordering::Relaxed);
        self.commit_batch_frames.store(0, Ordering::Relaxed);
        self.csr_bytes.store(0, Ordering::Relaxed);
    }
}

/// Plain-integer snapshot of [`SimCounters`], embeddable in results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Full or sampled fault-simulation steps.
    pub step_calls: u64,
    /// Good-machine-only steps.
    pub good_only_calls: u64,
    /// Gate evaluations (faulty packed words + good machine).
    pub gate_evals: u64,
    /// Good-circuit events.
    pub good_events: u64,
    /// Faulty-circuit events.
    pub faulty_events: u64,
    /// Checkpoint restores.
    pub checkpoint_restores: u64,
    /// Estimated deep-copy bytes skipped by copy-on-write restores.
    pub restore_bytes_avoided: u64,
    /// 64-slot packed good-machine frames evaluated for phase-1 fitness.
    pub packed_phase1_frames: u64,
    /// Evaluation chunks dispatched to persistent pool workers.
    pub pool_tasks: u64,
    /// Nanoseconds pool workers spent waiting for work.
    pub pool_idle_ns: u64,
    /// Pv64 fault groups dispatched to the fault-group-parallel sim pool.
    pub group_tasks: u64,
    /// Nanoseconds fault-group workers spent waking/claiming first groups.
    pub group_steal_ns: u64,
    /// Bytes served from reusable simulator scratch buffers.
    pub scratch_bytes_reused: u64,
    /// Run-state checkpoint files written.
    pub checkpoint_writes: u64,
    /// Total bytes of checkpoint files written.
    pub checkpoint_bytes: u64,
    /// Candidate evaluations answered from the fitness cache.
    pub cache_hits: u64,
    /// Fitness-cache lookups that fell through to simulation.
    pub cache_misses: u64,
    /// Candidates deduplicated away within evaluation batches.
    pub dedup_skips: u64,
    /// Sequence frames skipped by prefix-sharing evaluation.
    pub prefix_frames_avoided: u64,
    /// Fault groups simulated by a wide (more-than-64-lane) backend.
    pub wide_groups: u64,
    /// Lanes per packed fault group of the wide backend (0 = scalar-only).
    pub lanes_per_group: u64,
    /// Faulty events that shared a packed evaluation with another lane.
    pub events_amortized: u64,
    /// Vectors committed through the batched window path.
    pub commit_batch_frames: u64,
    /// Bytes of the levelized CSR adjacency arena (gauge).
    pub csr_bytes: u64,
}

impl CounterSnapshot {
    /// Total simulator step calls of any kind.
    pub fn total_steps(&self) -> u64 {
        self.step_calls + self.good_only_calls
    }

    /// Every counter as a `(name, value)` pair, in struct declaration
    /// order. The single source of field names for the JSON serializer and
    /// the Prometheus renderer, so adding a counter cannot silently skip a
    /// consumer.
    pub fn fields(&self) -> [(&'static str, u64); 24] {
        [
            ("step_calls", self.step_calls),
            ("good_only_calls", self.good_only_calls),
            ("gate_evals", self.gate_evals),
            ("good_events", self.good_events),
            ("faulty_events", self.faulty_events),
            ("checkpoint_restores", self.checkpoint_restores),
            ("restore_bytes_avoided", self.restore_bytes_avoided),
            ("packed_phase1_frames", self.packed_phase1_frames),
            ("pool_tasks", self.pool_tasks),
            ("pool_idle_ns", self.pool_idle_ns),
            ("group_tasks", self.group_tasks),
            ("group_steal_ns", self.group_steal_ns),
            ("scratch_bytes_reused", self.scratch_bytes_reused),
            ("checkpoint_writes", self.checkpoint_writes),
            ("checkpoint_bytes", self.checkpoint_bytes),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("dedup_skips", self.dedup_skips),
            ("prefix_frames_avoided", self.prefix_frames_avoided),
            ("wide_groups", self.wide_groups),
            ("lanes_per_group", self.lanes_per_group),
            ("events_amortized", self.events_amortized),
            ("commit_batch_frames", self.commit_batch_frames),
            ("csr_bytes", self.csr_bytes),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let c = SimCounters::new();
        c.record_step(100, 7, 30);
        c.record_step(50, 3, 10);
        c.record_good_only(20, 5);
        c.record_restore(4096);
        let s = c.snapshot();
        assert_eq!(s.step_calls, 2);
        assert_eq!(s.good_only_calls, 1);
        assert_eq!(s.gate_evals, 170);
        assert_eq!(s.good_events, 15);
        assert_eq!(s.faulty_events, 40);
        assert_eq!(s.checkpoint_restores, 1);
        assert_eq!(s.restore_bytes_avoided, 4096);
        assert_eq!(s.total_steps(), 3);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn eval_engine_counters_accumulate() {
        let c = SimCounters::new();
        c.record_packed_phase1(2);
        c.record_packed_phase1(2);
        c.record_pool_tasks(8);
        c.record_pool_idle(1_500);
        c.record_pool_idle(500);
        c.record_group_dispatch(24, 3_000);
        c.record_group_dispatch(8, 1_000);
        c.record_scratch_reuse(4_096);
        c.record_scratch_reuse(1_024);
        let s = c.snapshot();
        assert_eq!(s.packed_phase1_frames, 4);
        assert_eq!(s.pool_tasks, 8);
        assert_eq!(s.pool_idle_ns, 2_000);
        assert_eq!(s.group_tasks, 32);
        assert_eq!(s.group_steal_ns, 4_000);
        assert_eq!(s.scratch_bytes_reused, 5_120);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn backend_group_counters_accumulate_and_reload() {
        let c = SimCounters::new();
        c.record_backend_groups(256, 3);
        c.record_backend_groups(256, 2);
        let s = c.snapshot();
        assert_eq!(s.wide_groups, 5, "groups tally");
        assert_eq!(s.lanes_per_group, 256, "lane width is a gauge");

        let resumed = SimCounters::new();
        resumed.load_snapshot(&s);
        assert_eq!(resumed.snapshot(), s);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn amortization_counters_accumulate_and_reload() {
        let c = SimCounters::new();
        c.record_events_amortized(30);
        c.record_events_amortized(12);
        c.record_commit_batch(8);
        c.record_commit_batch(8);
        c.record_csr_bytes(10_000);
        c.record_csr_bytes(12_000);
        let s = c.snapshot();
        assert_eq!(s.events_amortized, 42, "events tally");
        assert_eq!(s.commit_batch_frames, 16, "frames tally");
        assert_eq!(s.csr_bytes, 12_000, "arena size is a gauge");

        let resumed = SimCounters::new();
        resumed.load_snapshot(&s);
        assert_eq!(resumed.snapshot(), s);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn memoization_counters_accumulate_and_reload() {
        let c = SimCounters::new();
        c.record_cache_outcome(10, 4);
        c.record_cache_outcome(5, 1);
        c.record_dedup_skips(3);
        c.record_prefix_frames_avoided(120);
        c.record_prefix_frames_avoided(8);
        let s = c.snapshot();
        assert_eq!(s.cache_hits, 15);
        assert_eq!(s.cache_misses, 5);
        assert_eq!(s.dedup_skips, 3);
        assert_eq!(s.prefix_frames_avoided, 128);

        let resumed = SimCounters::new();
        resumed.load_snapshot(&s);
        assert_eq!(resumed.snapshot(), s);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn checkpoint_write_counters_accumulate_and_reload() {
        let c = SimCounters::new();
        c.record_checkpoint_write(10_000);
        c.record_checkpoint_write(12_000);
        c.record_step(5, 1, 2);
        let s = c.snapshot();
        assert_eq!(s.checkpoint_writes, 2);
        assert_eq!(s.checkpoint_bytes, 22_000);

        // A resumed run reloads the saved totals and keeps accumulating.
        let resumed = SimCounters::new();
        resumed.load_snapshot(&s);
        assert_eq!(resumed.snapshot(), s);
        resumed.record_checkpoint_write(1_000);
        let s2 = resumed.snapshot();
        assert_eq!(s2.checkpoint_writes, 3);
        assert_eq!(s2.checkpoint_bytes, 23_000);
        assert_eq!(s2.step_calls, 1);
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let c = std::sync::Arc::new(SimCounters::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.record_step(3, 1, 2);
                        c.record_restore(16);
                    }
                });
            }
        });
        let s = c.snapshot();
        assert_eq!(s.step_calls, 4000);
        assert_eq!(s.gate_evals, 12000);
        assert_eq!(s.good_events, 4000);
        assert_eq!(s.faulty_events, 8000);
        assert_eq!(s.checkpoint_restores, 4000);
        assert_eq!(s.restore_bytes_avoided, 64000);
    }
}
