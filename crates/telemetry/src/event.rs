//! Typed run events emitted by the test generator.

use crate::snapshot::TelemetrySnapshot;

/// One observable moment in a test-generation run.
///
/// Phases are the paper's Figure 2 numbering: 1 = initialization,
/// 2 = vector generation, 3 = stalled vector generation (activity term),
/// 4 = sequence generation.
#[derive(Debug, Clone, PartialEq)]
pub enum RunEvent {
    /// The run began.
    RunStarted {
        /// Circuit name.
        circuit: String,
        /// Faults in the (collapsed) target list.
        total_faults: usize,
        /// Master random seed.
        seed: u64,
        /// Resolved packed-simulation backend name (`scalar64`/`wide256`).
        backend: String,
        /// Packed lanes per fault group for that backend (64/256).
        lanes: usize,
    },
    /// The Figure 2 phase machine entered a phase (including the first).
    PhaseEntered {
        /// Phase number, 1–4.
        phase: u8,
        /// Vectors committed before entering.
        vectors: usize,
    },
    /// One GA generation finished evaluating.
    GaGenerationEvaluated {
        /// Phase the GA invocation serves.
        phase: u8,
        /// Generation index within the invocation (0 = initial population).
        generation: usize,
        /// Best fitness in the population after this generation.
        best: f64,
        /// Mean fitness of the population after this generation.
        mean: f64,
        /// Fitness evaluations performed *for this generation* (not
        /// cumulative), so observers can sum deltas into a global rate.
        evaluations: usize,
    },
    /// The winning candidate was committed to the test set.
    VectorCommitted {
        /// Phase that produced the vector.
        phase: u8,
        /// Test-set length after the commit.
        vectors: usize,
        /// Faults newly detected by this vector.
        detected_new: usize,
        /// Total faults detected so far.
        detected_total: usize,
        /// Fault coverage so far, in `0..=1`.
        coverage: f64,
    },
    /// One fault was detected (emitted per fault on committed vectors).
    FaultDetected {
        /// Index of the fault in the target list.
        fault: u32,
        /// Human-readable fault site (`net/SA0` style).
        site: String,
        /// Index of the detecting vector in the test set.
        vector: usize,
    },
    /// The run completed (or stopped early on a budget or interrupt).
    RunFinished {
        /// Faults detected by the final test set.
        detected: usize,
        /// Faults in the target list.
        total_faults: usize,
        /// Vectors in the final test set.
        vectors: usize,
        /// Total GA fitness evaluations.
        ga_evaluations: usize,
        /// Wall-clock run time in seconds (cumulative across resumed legs).
        elapsed_secs: f64,
        /// True when the run stopped because a wall-clock or evaluation
        /// budget was exhausted rather than by finishing the flow.
        budget_exhausted: bool,
        /// Final telemetry aggregate (phase timings, counters). Boxed so
        /// the once-per-run variant doesn't size every per-generation
        /// event.
        snapshot: Box<TelemetrySnapshot>,
    },
}

impl RunEvent {
    /// The snake-case kind tag used in JSONL traces.
    pub fn kind(&self) -> &'static str {
        match self {
            RunEvent::RunStarted { .. } => "run_started",
            RunEvent::PhaseEntered { .. } => "phase_entered",
            RunEvent::GaGenerationEvaluated { .. } => "ga_generation",
            RunEvent::VectorCommitted { .. } => "vector_committed",
            RunEvent::FaultDetected { .. } => "fault_detected",
            RunEvent::RunFinished { .. } => "run_finished",
        }
    }

    /// All six kind tags, in emission-lifecycle order.
    pub const KINDS: [&'static str; 6] = [
        "run_started",
        "phase_entered",
        "ga_generation",
        "vector_committed",
        "fault_detected",
        "run_finished",
    ];
}
