//! Live metrics exposition: a tiny hand-rolled HTTP listener serving
//! Prometheus text format on `/metrics` and a JSON health snapshot on
//! `/healthz`.
//!
//! The workspace is dependency-free by policy, so this is `std::net` only:
//! a single accept thread that parses just the request line, answers, and
//! closes the connection. It is deliberately minimal — the first
//! serving-shaped component on the road to `gatest serve`, not a general
//! HTTP server. The server only ever *reads* shared atomics, so serving a
//! request cannot perturb the run it observes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::counters::SimCounters;
use crate::json::quote;
use crate::Instruments;

/// A background HTTP listener exposing an [`Instruments`] bundle (and the
/// simulator's [`SimCounters`]) until dropped.
///
/// Routes:
/// * `GET /metrics` — Prometheus text format: the registry's metrics, every
///   `SimCounters` field as `gatest_sim_<name>_total`, and the span
///   aggregates as `gatest_span_time_ns{kind=...,parent=...}`.
/// * `GET /healthz` — a one-object JSON snapshot of run progress.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port — read
    /// it back with [`MetricsServer::local_addr`]) and starts serving on a
    /// background thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable or malformed.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        instruments: Arc<Instruments>,
        counters: Arc<SimCounters>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let started = Instant::now();
        let handle = std::thread::Builder::new()
            .name("gatest-metrics".into())
            .spawn(move || serve(listener, &flag, &instruments, &counters, started))?;
        Ok(MetricsServer {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve(
    listener: TcpListener,
    shutdown: &AtomicBool,
    instruments: &Instruments,
    counters: &SimCounters,
    started: Instant,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = handle_request(&mut stream, instruments, counters, started);
    }
}

fn handle_request(
    stream: &mut TcpStream,
    instruments: &Instruments,
    counters: &SimCounters,
    started: Instant,
) -> std::io::Result<()> {
    let path = match read_request_path(stream) {
        Some(path) => path,
        None => return Ok(()), // closed early or malformed; nothing to say
    };
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_metrics(instruments, counters),
        ),
        "/healthz" => (
            "200 OK",
            "application/json",
            render_health(instruments, started),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            String::from("try /metrics or /healthz\n"),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Reads until the end of the request headers and returns the request-line
/// path, or `None` for anything that is not a parseable `GET`-style line.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let _method = parts.next()?;
    parts.next().map(str::to_owned)
}

/// Renders everything observable as Prometheus text format.
pub fn render_metrics(instruments: &Instruments, counters: &SimCounters) -> String {
    use std::fmt::Write as _;
    let mut out = instruments.metrics.registry.render_prometheus();
    let snapshot = counters.snapshot();
    for (name, value) in snapshot.fields() {
        let _ = writeln!(out, "# TYPE gatest_sim_{name}_total counter");
        let _ = writeln!(out, "gatest_sim_{name}_total {value}");
    }
    let spans = instruments.spans.snapshot();
    if !spans.is_empty() {
        let _ = writeln!(
            out,
            "# HELP gatest_span_time_ns Inclusive span time by (kind, parent)"
        );
        let _ = writeln!(out, "# TYPE gatest_span_time_ns counter");
        let _ = writeln!(
            out,
            "# HELP gatest_span_count Completed spans by (kind, parent)"
        );
        let _ = writeln!(out, "# TYPE gatest_span_count counter");
        for node in &spans.nodes {
            let parent = node.parent.as_deref().unwrap_or("root");
            let _ = writeln!(
                out,
                "gatest_span_time_ns{{kind=\"{}\",parent=\"{parent}\"}} {}",
                node.kind, node.incl_ns
            );
            let _ = writeln!(
                out,
                "gatest_span_count{{kind=\"{}\",parent=\"{parent}\"}} {}",
                node.kind, node.count
            );
        }
    }
    out
}

/// Renders the `/healthz` JSON snapshot.
pub fn render_health(instruments: &Instruments, started: Instant) -> String {
    let m = &instruments.metrics;
    let active = m.run_active.get() != 0.0;
    format!(
        "{{\"status\":{},\"run_active\":{active},\"uptime_secs\":{:.3},\"phase\":{},\"vectors\":{},\"detected\":{},\"total_faults\":{},\"coverage_percent\":{:.2},\"ga_generations\":{},\"ga_evaluations\":{}}}\n",
        quote("ok"),
        started.elapsed().as_secs_f64(),
        m.phase.get() as u64,
        m.vectors.get() as u64,
        m.detected.get() as u64,
        m.total_faults.get() as u64,
        m.coverage_percent.get(),
        m.ga_generations.get(),
        m.ga_evaluations.get(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, Json};

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn serves_metrics_health_and_404_until_dropped() {
        let instruments = Instruments::new();
        let counters = Arc::new(SimCounters::new());
        counters.record_step(100, 5, 20);
        instruments.metrics.phase.set(2.0);
        instruments.metrics.run_active.set(1.0);
        instruments.metrics.batch_latency_ns.observe(1_234);
        {
            let handle = instruments.spans.handle();
            let _g = handle.enter(crate::SpanKind::Run);
        }
        let server = MetricsServer::bind(
            "127.0.0.1:0",
            Arc::clone(&instruments),
            Arc::clone(&counters),
        )
        .expect("bind");
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("# TYPE gatest_eval_batch_latency_ns histogram"));
        assert!(body.contains("gatest_eval_batch_latency_ns_count 1"));
        assert!(body.contains("gatest_sim_step_calls_total 1"));
        assert!(body.contains("gatest_sim_gate_evals_total 100"));
        assert!(body.contains("gatest_span_count{kind=\"run\",parent=\"root\"} 1"));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let health = parse_json(body.trim()).expect("healthz is JSON");
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(health.get("run_active"), Some(&Json::Bool(true)));
        assert_eq!(health.get("phase").and_then(Json::as_u64), Some(2));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        drop(server);
        // The port is released: a fresh bind to the same address succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "server thread must release the listener");
    }
}
