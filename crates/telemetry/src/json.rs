//! Hand-rolled JSON: event serialization and a minimal parser.
//!
//! The workspace is dependency-free by policy, so traces are serialized with
//! a small formatter and read back (for `gatest trace summarize` and tests)
//! with a minimal recursive-descent parser. Only what JSONL traces need is
//! supported: objects, arrays, strings, finite numbers, booleans, null.

use std::fmt::Write as _;

use crate::event::RunEvent;
use crate::metrics::HistogramSnapshot;
use crate::snapshot::TelemetrySnapshot;
use crate::span::{SpanNode, SpanSnapshot};

/// Serializes one event as a single-line JSON object.
///
/// Every object carries an `"event"` kind tag first, so stream consumers can
/// dispatch without full parsing (`grep '"event":"vector_committed"'`).
pub fn event_to_json(event: &RunEvent) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(s, "{{\"event\":\"{}\"", event.kind());
    match event {
        RunEvent::RunStarted {
            circuit,
            total_faults,
            seed,
            backend,
            lanes,
        } => {
            let _ = write!(
                s,
                ",\"circuit\":{},\"total_faults\":{total_faults},\"seed\":{seed},\"backend\":{},\"lanes\":{lanes}",
                quote(circuit),
                quote(backend)
            );
        }
        RunEvent::PhaseEntered { phase, vectors } => {
            let _ = write!(s, ",\"phase\":{phase},\"vectors\":{vectors}");
        }
        RunEvent::GaGenerationEvaluated {
            phase,
            generation,
            best,
            mean,
            evaluations,
        } => {
            let _ = write!(
                s,
                ",\"phase\":{phase},\"generation\":{generation},\"best\":{},\"mean\":{},\"evaluations\":{evaluations}",
                num(*best),
                num(*mean)
            );
        }
        RunEvent::VectorCommitted {
            phase,
            vectors,
            detected_new,
            detected_total,
            coverage,
        } => {
            let _ = write!(
                s,
                ",\"phase\":{phase},\"vectors\":{vectors},\"detected_new\":{detected_new},\"detected_total\":{detected_total},\"coverage\":{}",
                num(*coverage)
            );
        }
        RunEvent::FaultDetected {
            fault,
            site,
            vector,
        } => {
            let _ = write!(
                s,
                ",\"fault\":{fault},\"site\":{},\"vector\":{vector}",
                quote(site)
            );
        }
        RunEvent::RunFinished {
            detected,
            total_faults,
            vectors,
            ga_evaluations,
            elapsed_secs,
            budget_exhausted,
            snapshot,
        } => {
            let _ = write!(
                s,
                ",\"detected\":{detected},\"total_faults\":{total_faults},\"vectors\":{vectors},\"ga_evaluations\":{ga_evaluations},\"elapsed_secs\":{},\"budget_exhausted\":{budget_exhausted},{}",
                num(*elapsed_secs),
                snapshot_fields(snapshot)
            );
        }
    }
    s.push('}');
    s
}

fn snapshot_fields(snapshot: &TelemetrySnapshot) -> String {
    let mut s = String::from("\"phase_time_secs\":[");
    for (i, d) in snapshot.phase_time.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}", num(d.as_secs_f64()));
    }
    let _ = write!(
        s,
        "],\"ga_generations\":{},\"counters\":{{",
        snapshot.ga_generations
    );
    for (i, (name, value)) in snapshot.counters.fields().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{name}\":{value}");
    }
    let _ = write!(s, "}},\"spans\":{}", spans_to_json(&snapshot.spans));
    s
}

/// Serializes a span-aggregate tree as a JSON array of node objects.
pub fn spans_to_json(spans: &SpanSnapshot) -> String {
    let mut s = String::from("[");
    for (i, node) in spans.nodes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let parent = match &node.parent {
            Some(p) => quote(p),
            None => String::from("null"),
        };
        let _ = write!(
            s,
            "{{\"kind\":{},\"parent\":{parent},\"count\":{},\"incl_ns\":{},\"excl_ns\":{}}}",
            quote(&node.kind),
            node.count,
            node.incl_ns,
            node.excl_ns
        );
    }
    s.push(']');
    s
}

/// Reads a span-aggregate tree back from the value [`spans_to_json`]
/// produced. Returns `None` when the shape does not match.
pub fn spans_from_json(value: &Json) -> Option<SpanSnapshot> {
    let mut nodes = Vec::new();
    for item in value.as_array()? {
        let parent = match item.get("parent")? {
            Json::Null => None,
            Json::Str(p) => Some(p.clone()),
            _ => return None,
        };
        nodes.push(SpanNode {
            kind: item.get("kind")?.as_str()?.to_owned(),
            parent,
            count: item.get("count")?.as_u64()?,
            incl_ns: item.get("incl_ns")?.as_u64()?,
            excl_ns: item.get("excl_ns")?.as_u64()?,
        });
    }
    Some(SpanSnapshot { nodes })
}

/// Serializes a histogram snapshot as a JSON object with a bucket array of
/// `[inclusive upper bound, count]` pairs.
pub fn histogram_to_json(snapshot: &HistogramSnapshot) -> String {
    let mut s = format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
        snapshot.count, snapshot.sum, snapshot.min, snapshot.max
    );
    for (i, (bound, n)) in snapshot.buckets.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{bound},{n}]");
    }
    s.push_str("]}");
    s
}

/// Reads a histogram snapshot back from the value [`histogram_to_json`]
/// produced. Returns `None` when the shape does not match.
pub fn histogram_from_json(value: &Json) -> Option<HistogramSnapshot> {
    let mut buckets = Vec::new();
    for pair in value.get("buckets")?.as_array()? {
        let pair = pair.as_array()?;
        if pair.len() != 2 {
            return None;
        }
        buckets.push((pair[0].as_u64()?, pair[1].as_u64()?));
    }
    Some(HistogramSnapshot {
        count: value.get("count")?.as_u64()?,
        sum: value.get("sum")?.as_u64()?,
        min: value.get("min")?.as_u64()?,
        max: value.get("max")?.as_u64()?,
        buckets,
    })
}

/// Formats a finite JSON number (non-finite values become 0).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::from("0")
    }
}

/// Quotes and escapes a JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; traces only emit values that fit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value back to compact JSON text.
    ///
    /// Numbers print through Rust's shortest-round-trip `f64` formatting
    /// (non-finite values become `0`, as in the event writer), so
    /// `parse_json(&v.render())` reproduces `v` exactly for any value built
    /// from finite numbers.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&num(*v)),
            Json::Str(s) => out.push_str(&quote(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&quote(key));
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err(String::from("unexpected end of input")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(String::from("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterSnapshot;
    use std::time::Duration;

    fn sample_events() -> Vec<RunEvent> {
        vec![
            RunEvent::RunStarted {
                circuit: String::from("s27\"quoted\""),
                total_faults: 26,
                seed: 42,
                backend: String::from("wide256"),
                lanes: 256,
            },
            RunEvent::PhaseEntered {
                phase: 1,
                vectors: 0,
            },
            RunEvent::GaGenerationEvaluated {
                phase: 2,
                generation: 3,
                best: 1.5,
                mean: 0.75,
                evaluations: 16,
            },
            RunEvent::VectorCommitted {
                phase: 2,
                vectors: 5,
                detected_new: 3,
                detected_total: 12,
                coverage: 12.0 / 26.0,
            },
            RunEvent::FaultDetected {
                fault: 7,
                site: String::from("G10 SA1"),
                vector: 4,
            },
            RunEvent::RunFinished {
                detected: 25,
                total_faults: 26,
                vectors: 9,
                ga_evaluations: 640,
                elapsed_secs: 0.125,
                budget_exhausted: false,
                snapshot: Box::new(TelemetrySnapshot {
                    phase_time: [
                        Duration::from_millis(10),
                        Duration::from_millis(80),
                        Duration::from_millis(5),
                        Duration::from_millis(30),
                    ],
                    ga_generations: 45,
                    counters: CounterSnapshot {
                        step_calls: 700,
                        good_only_calls: 32,
                        gate_evals: 91_000,
                        good_events: 4_400,
                        faulty_events: 18_000,
                        checkpoint_restores: 640,
                        restore_bytes_avoided: 5_242_880,
                        packed_phase1_frames: 22,
                        pool_tasks: 96,
                        pool_idle_ns: 1_250_000,
                        group_tasks: 1_024,
                        group_steal_ns: 730_000,
                        scratch_bytes_reused: 8_388_608,
                        checkpoint_writes: 3,
                        checkpoint_bytes: 45_000,
                        cache_hits: 210,
                        cache_misses: 430,
                        dedup_skips: 37,
                        prefix_frames_avoided: 1_900,
                        wide_groups: 12,
                        lanes_per_group: 256,
                        events_amortized: 5_600,
                        commit_batch_frames: 24,
                        csr_bytes: 96_000,
                    },
                    spans: SpanSnapshot {
                        nodes: vec![
                            SpanNode {
                                kind: String::from("run"),
                                parent: None,
                                count: 1,
                                incl_ns: 125_000_000,
                                excl_ns: 5_000_000,
                            },
                            SpanNode {
                                kind: String::from("generation"),
                                parent: Some(String::from("run")),
                                count: 45,
                                incl_ns: 110_000_000,
                                excl_ns: 9_000_000,
                            },
                        ],
                    },
                }),
            },
        ]
    }

    #[test]
    fn every_event_kind_round_trips_to_parseable_json() {
        let events = sample_events();
        assert_eq!(events.len(), RunEvent::KINDS.len());
        for event in &events {
            let line = event_to_json(event);
            let parsed = parse_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(
                parsed.get("event").and_then(Json::as_str),
                Some(event.kind()),
                "kind tag must lead the object"
            );
        }
    }

    #[test]
    fn run_started_fields_survive() {
        let line = event_to_json(&sample_events()[0]);
        let j = parse_json(&line).unwrap();
        assert_eq!(
            j.get("circuit").and_then(Json::as_str),
            Some("s27\"quoted\"")
        );
        assert_eq!(j.get("total_faults").and_then(Json::as_u64), Some(26));
        assert_eq!(j.get("seed").and_then(Json::as_u64), Some(42));
        assert_eq!(j.get("backend").and_then(Json::as_str), Some("wide256"));
        assert_eq!(j.get("lanes").and_then(Json::as_u64), Some(256));
    }

    #[test]
    fn ga_generation_fields_survive() {
        let line = event_to_json(&sample_events()[2]);
        let j = parse_json(&line).unwrap();
        assert_eq!(j.get("generation").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("best").and_then(Json::as_f64), Some(1.5));
        assert_eq!(j.get("mean").and_then(Json::as_f64), Some(0.75));
        assert_eq!(j.get("evaluations").and_then(Json::as_u64), Some(16));
    }

    #[test]
    fn run_finished_snapshot_survives() {
        let line = event_to_json(&sample_events()[5]);
        let j = parse_json(&line).unwrap();
        assert_eq!(j.get("detected").and_then(Json::as_u64), Some(25));
        let times = j.get("phase_time_secs").and_then(Json::as_array).unwrap();
        assert_eq!(times.len(), 4);
        assert!((times[1].as_f64().unwrap() - 0.08).abs() < 1e-9);
        let counters = j.get("counters").unwrap();
        assert_eq!(
            counters.get("gate_evals").and_then(Json::as_u64),
            Some(91_000)
        );
        assert_eq!(
            counters.get("checkpoint_restores").and_then(Json::as_u64),
            Some(640)
        );
        assert_eq!(
            counters.get("restore_bytes_avoided").and_then(Json::as_u64),
            Some(5_242_880)
        );
        assert_eq!(
            counters.get("packed_phase1_frames").and_then(Json::as_u64),
            Some(22)
        );
        assert_eq!(counters.get("pool_tasks").and_then(Json::as_u64), Some(96));
        assert_eq!(
            counters.get("pool_idle_ns").and_then(Json::as_u64),
            Some(1_250_000)
        );
        assert_eq!(
            counters.get("group_tasks").and_then(Json::as_u64),
            Some(1_024)
        );
        assert_eq!(
            counters.get("group_steal_ns").and_then(Json::as_u64),
            Some(730_000)
        );
        assert_eq!(
            counters.get("scratch_bytes_reused").and_then(Json::as_u64),
            Some(8_388_608)
        );
        assert_eq!(
            counters.get("checkpoint_writes").and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            counters.get("checkpoint_bytes").and_then(Json::as_u64),
            Some(45_000)
        );
        assert_eq!(counters.get("cache_hits").and_then(Json::as_u64), Some(210));
        assert_eq!(
            counters.get("cache_misses").and_then(Json::as_u64),
            Some(430)
        );
        assert_eq!(counters.get("dedup_skips").and_then(Json::as_u64), Some(37));
        assert_eq!(
            counters.get("prefix_frames_avoided").and_then(Json::as_u64),
            Some(1_900)
        );
        let spans = spans_from_json(j.get("spans").unwrap()).unwrap();
        assert_eq!(spans.nodes.len(), 2);
        assert_eq!(spans.get("run", None).unwrap().incl_ns, 125_000_000);
        assert_eq!(spans.get("generation", Some("run")).unwrap().count, 45);
    }

    #[test]
    fn span_snapshots_round_trip() {
        let snapshot = SpanSnapshot {
            nodes: vec![SpanNode {
                kind: String::from("eval_batch"),
                parent: Some(String::from("generation")),
                count: 7,
                incl_ns: 1_234,
                excl_ns: 1_000,
            }],
        };
        let parsed = parse_json(&spans_to_json(&snapshot)).unwrap();
        assert_eq!(spans_from_json(&parsed), Some(snapshot));
        assert_eq!(
            spans_from_json(&parse_json("[]").unwrap()),
            Some(SpanSnapshot::default())
        );
        assert_eq!(spans_from_json(&Json::Null), None);
    }

    #[test]
    fn histogram_snapshots_round_trip() {
        let snapshot = HistogramSnapshot {
            count: 3,
            sum: 1_006,
            min: 3,
            max: 1_000,
            buckets: vec![(3, 2), (1_023, 1)],
        };
        let parsed = parse_json(&histogram_to_json(&snapshot)).unwrap();
        assert_eq!(histogram_from_json(&parsed), Some(snapshot));
        assert_eq!(
            histogram_from_json(&parse_json("{\"count\":0}").unwrap()),
            None
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_json("{\"a\":").is_err());
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1 2]").is_err());
        assert!(parse_json("\"open").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let j =
            parse_json("{\"a\":[1,2.5,{\"b\":\"x\\n\\u0041\"}],\"c\":null,\"d\":true}").unwrap();
        let arr = j.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b").and_then(Json::as_str), Some("x\nA"));
        assert_eq!(j.get("c"), Some(&Json::Null));
        assert_eq!(j.get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn non_finite_numbers_serialize_as_zero() {
        let line = event_to_json(&RunEvent::VectorCommitted {
            phase: 2,
            vectors: 1,
            detected_new: 0,
            detected_total: 0,
            coverage: f64::NAN,
        });
        let j = parse_json(&line).unwrap();
        assert_eq!(j.get("coverage").and_then(Json::as_f64), Some(0.0));
    }
}
