//! JSONL trace writer: one JSON object per event.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::RunEvent;
use crate::json::event_to_json;
use crate::RunObserver;

/// Writes each event as one JSON line to an underlying writer.
///
/// Lines are written eagerly but the writer is only flushed on
/// [`RunEvent::RunFinished`] (and on drop, via the inner `BufWriter` when
/// constructed with [`JsonlTraceWriter::create`]), so tracing stays off the
/// hot path. Write errors are counted, not propagated: telemetry must never
/// abort a test-generation run.
pub struct JsonlTraceWriter<W: Write> {
    inner: Mutex<WriterState<W>>,
}

struct WriterState<W: Write> {
    writer: W,
    errors: u64,
}

impl JsonlTraceWriter<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlTraceWriter::new(BufWriter::new(file)))
    }
}

impl<W: Write> JsonlTraceWriter<W> {
    /// Wraps an arbitrary writer (e.g. `Vec<u8>` in tests).
    pub fn new(writer: W) -> Self {
        JsonlTraceWriter {
            inner: Mutex::new(WriterState { writer, errors: 0 }),
        }
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if the internal mutex was poisoned.
    pub fn into_inner(self) -> W {
        let mut state = self.inner.into_inner().expect("trace writer poisoned");
        let _ = state.writer.flush();
        state.writer
    }

    /// Number of write errors swallowed so far.
    pub fn error_count(&self) -> u64 {
        self.inner.lock().expect("trace writer poisoned").errors
    }
}

impl<W: Write + Send> RunObserver for JsonlTraceWriter<W> {
    fn on_event(&self, event: &RunEvent) {
        let line = event_to_json(event);
        let mut state = self.inner.lock().expect("trace writer poisoned");
        if writeln!(state.writer, "{line}").is_err() {
            state.errors += 1;
            return;
        }
        if matches!(event, RunEvent::RunFinished { .. }) && state.writer.flush().is_err() {
            state.errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, Json};

    #[test]
    fn writes_one_line_per_event() {
        let writer = JsonlTraceWriter::new(Vec::new());
        writer.on_event(&RunEvent::RunStarted {
            circuit: "s27".into(),
            total_faults: 26,
            seed: 7,
            backend: "scalar64".into(),
            lanes: 64,
        });
        writer.on_event(&RunEvent::PhaseEntered {
            phase: 1,
            vectors: 0,
        });
        writer.on_event(&RunEvent::RunFinished {
            detected: 25,
            total_faults: 26,
            vectors: 9,
            ga_evaluations: 100,
            elapsed_secs: 0.5,
            budget_exhausted: false,
            snapshot: Box::default(),
        });
        assert_eq!(writer.error_count(), 0);
        let text = String::from_utf8(writer.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let kinds: Vec<String> = lines
            .iter()
            .map(|l| {
                parse_json(l)
                    .unwrap()
                    .get("event")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(kinds, ["run_started", "phase_entered", "run_finished"]);
    }

    #[test]
    fn write_errors_are_swallowed_and_counted() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let writer = JsonlTraceWriter::new(Failing);
        writer.on_event(&RunEvent::PhaseEntered {
            phase: 1,
            vectors: 0,
        });
        writer.on_event(&RunEvent::PhaseEntered {
            phase: 2,
            vectors: 0,
        });
        assert_eq!(writer.error_count(), 2);
    }

    #[test]
    fn create_writes_a_readable_file() {
        let path =
            std::env::temp_dir().join(format!("gatest-trace-test-{}.jsonl", std::process::id()));
        let writer = JsonlTraceWriter::create(&path).unwrap();
        writer.on_event(&RunEvent::FaultDetected {
            fault: 3,
            site: "G5 SA0".into(),
            vector: 2,
        });
        drop(writer.into_inner());
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let j = parse_json(text.trim()).unwrap();
        assert_eq!(j.get("site").and_then(Json::as_str), Some("G5 SA0"));
    }
}
