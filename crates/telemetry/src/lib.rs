#![warn(missing_docs)]

//! Run telemetry for the GATEST pipeline.
//!
//! GATEST's behavior is defined by dynamics that a final coverage number
//! cannot show: the Figure 2 phase machine's transitions, per-generation GA
//! fitness trajectories, and the fault-simulator event activity that the
//! phase-3 fitness explicitly rewards. This crate makes those visible:
//!
//! * [`RunObserver`] — a trait receiving typed [`RunEvent`]s from the test
//!   generator as a run unfolds;
//! * [`SimCounters`] — lock-free (relaxed-atomic) counters sampled from the
//!   fault simulator's hot paths;
//! * [`TelemetrySnapshot`] — the per-run aggregate embedded in results;
//! * three built-in observers: [`NullObserver`] (default, zero-cost),
//!   [`JsonlTraceWriter`] (one JSON object per event), and
//!   [`ProgressReporter`] (throttled live stderr lines).
//!
//! The crate has no dependencies — JSON is hand-rolled in [`json`] — so it
//! can sit below every other crate in the workspace.
//!
//! # Example
//!
//! ```
//! use gatest_telemetry::{JsonlTraceWriter, RunEvent, RunObserver};
//!
//! let writer = JsonlTraceWriter::new(Vec::new());
//! writer.on_event(&RunEvent::RunStarted {
//!     circuit: "s27".into(),
//!     total_faults: 26,
//!     seed: 1,
//!     backend: "scalar64".into(),
//!     lanes: 64,
//! });
//! let bytes = writer.into_inner();
//! let line = String::from_utf8(bytes).unwrap();
//! assert!(line.starts_with("{\"event\":\"run_started\""));
//! ```

pub mod counters;
pub mod event;
pub mod expose;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod progress;
pub mod snapshot;
pub mod span;

use std::sync::Arc;

pub use counters::{CounterSnapshot, SimCounters};
pub use event::RunEvent;
pub use expose::MetricsServer;
pub use jsonl::JsonlTraceWriter;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsObserver, MetricsRegistry, RunMetrics,
};
pub use progress::ProgressReporter;
pub use snapshot::TelemetrySnapshot;
pub use span::{
    SpanCollector, SpanGuard, SpanHandle, SpanKind, SpanNode, SpanRecord, SpanSnapshot,
};

/// The per-run instrumentation bundle: a hierarchical [`SpanCollector`]
/// plus the pre-registered [`RunMetrics`].
///
/// One `Arc<Instruments>` is shared by the generator, its evaluation pool
/// workers, and every simulator clone, mirroring how [`SimCounters`] is
/// shared — attach it where the run is built, and every layer records into
/// the same place. Instrumentation is observational only: attaching (or
/// not attaching) a bundle never changes run results.
#[derive(Debug, Default)]
pub struct Instruments {
    /// Hierarchical timing spans.
    pub spans: SpanCollector,
    /// Counters, gauges, and latency histograms.
    pub metrics: RunMetrics,
}

impl Instruments {
    /// A fresh shared bundle.
    pub fn new() -> Arc<Instruments> {
        Arc::new(Instruments::default())
    }
}

/// Receives [`RunEvent`]s as a test-generation run unfolds.
///
/// Observers are shared behind `Arc<dyn RunObserver>` and may be called from
/// the generator's main thread only; `Send + Sync` keeps them shareable
/// across the worker threads that own simulator clones.
pub trait RunObserver: Send + Sync {
    /// Called for every event, in emission order.
    fn on_event(&self, event: &RunEvent);
}

/// The default observer: ignores every event.
///
/// Using this observer keeps the pipeline's telemetry cost to a handful of
/// relaxed atomic adds per simulated vector.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RunObserver for NullObserver {
    fn on_event(&self, _event: &RunEvent) {}
}

/// Fans every event out to a list of observers, in order.
#[derive(Default)]
pub struct MultiObserver {
    observers: Vec<Arc<dyn RunObserver>>,
}

impl MultiObserver {
    /// An observer forwarding to `observers` in order.
    pub fn new(observers: Vec<Arc<dyn RunObserver>>) -> Self {
        MultiObserver { observers }
    }

    /// Adds one more downstream observer.
    pub fn push(&mut self, observer: Arc<dyn RunObserver>) {
        self.observers.push(observer);
    }

    /// Number of downstream observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// True when no observers are attached.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

impl RunObserver for MultiObserver {
    fn on_event(&self, event: &RunEvent) {
        for observer in &self.observers {
            observer.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Default)]
    struct Counting(AtomicUsize);

    impl RunObserver for Counting {
        fn on_event(&self, _event: &RunEvent) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn multi_observer_fans_out() {
        let a = Arc::new(Counting::default());
        let b = Arc::new(Counting::default());
        let mut multi = MultiObserver::default();
        assert!(multi.is_empty());
        multi.push(a.clone());
        multi.push(b.clone());
        assert_eq!(multi.len(), 2);
        multi.on_event(&RunEvent::PhaseEntered {
            phase: 1,
            vectors: 0,
        });
        multi.on_event(&RunEvent::PhaseEntered {
            phase: 2,
            vectors: 3,
        });
        assert_eq!(a.0.load(Ordering::Relaxed), 2);
        assert_eq!(b.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn null_observer_is_inert() {
        NullObserver.on_event(&RunEvent::RunFinished {
            detected: 0,
            total_faults: 0,
            vectors: 0,
            ga_evaluations: 0,
            elapsed_secs: 0.0,
            budget_exhausted: false,
            snapshot: Box::default(),
        });
    }
}
