//! The run-metrics registry: monotonic counters, gauges, and log-linear
//! bucket histograms, with Prometheus text rendering.
//!
//! Like the rest of the crate this is dependency-free and safe to update
//! from any thread: every metric is a handful of relaxed atomics. The
//! registry owns metric names and help strings so the `/metrics` endpoint
//! ([`crate::expose`]) can render everything without knowing which
//! subsystem registered what.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use crate::event::RunEvent;
use crate::{Instruments, RunObserver};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits, so updates are atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

/// Linear sub-buckets per power-of-two magnitude.
const SUB_BITS: u32 = 2;
const SUB: usize = 1 << SUB_BITS;
/// Values below this get one exact bucket each.
const EXACT: u64 = 8;
const NBUCKETS: usize = EXACT as usize + (63 - 2) * SUB;

/// Index of the log-linear bucket covering `v`.
fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let m = 63 - v.leading_zeros() as usize; // m >= 3
    let sub = ((v >> (m - SUB_BITS as usize)) & (SUB as u64 - 1)) as usize;
    EXACT as usize + (m - 3) * SUB + sub
}

/// Inclusive upper bound of bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    if (i as u64) < EXACT {
        return i as u64;
    }
    let b = i - EXACT as usize;
    let m = 3 + b / SUB;
    let sub = (b % SUB) as u64;
    let width = 1u64 << (m - SUB_BITS as usize);
    // Written to avoid overflow in the top bucket, whose bound is u64::MAX.
    (1u64 << m) - 1 + (sub + 1) * width
}

/// A log-linear-bucket histogram over `u64` values (typically nanoseconds):
/// power-of-two magnitudes split into four linear sub-buckets, for a worst
/// case relative error of 12.5% using a fixed 248-bucket table.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// A point-in-time copy with only the occupied buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Relaxed);
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Relaxed);
            if n > 0 {
                buckets.push((bucket_bound(i), n));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Relaxed)
            },
            max: self.max.load(Relaxed),
            buckets,
        }
    }
}

/// A point-in-time [`Histogram`] copy: occupied buckets only, as
/// `(inclusive upper bound, count)` pairs in ascending bound order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// `(inclusive upper bound, count)` per occupied bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing the `q`-quantile (0.0..=1.0).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    metric: Metric,
}

/// A named collection of metrics, renderable as Prometheus text format.
///
/// Registration order is preserved in the rendered output.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.entries.lock().unwrap().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &'static str, help: &'static str, metric: Metric) {
        let mut entries = self.entries.lock().unwrap();
        assert!(
            entries.iter().all(|e| e.name != name),
            "metric {name} registered twice"
        );
        entries.push(Entry { name, help, metric });
    }

    /// Registers and returns a counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let c = Arc::new(Counter::default());
        self.register(name, help, Metric::Counter(Arc::clone(&c)));
        c
    }

    /// Registers and returns a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::default());
        self.register(name, help, Metric::Gauge(Arc::clone(&g)));
        g
    }

    /// Registers and returns a histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.register(name, help, Metric::Histogram(Arc::clone(&h)));
        h
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format (`# HELP` / `# TYPE` comments, cumulative `_bucket{le=...}`
    /// series plus `_sum` / `_count` for histograms).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for entry in self.entries.lock().unwrap().iter() {
            let name = entry.name;
            let _ = writeln!(out, "# HELP {name} {}", entry.help);
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let v = g.get();
                    let _ = writeln!(out, "{name} {}", if v.is_finite() { v } else { 0.0 });
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (bound, n) in &snap.buckets {
                        cumulative += n;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
                    let _ = writeln!(out, "{name}_sum {}", snap.sum);
                    let _ = writeln!(out, "{name}_count {}", snap.count);
                }
            }
        }
        out
    }
}

/// The pre-registered metric bundle one instrumented run records into.
///
/// Field handles are shared with the [`MetricsRegistry`] so the `/metrics`
/// endpoint renders them by name; instrumented code updates them through
/// the typed handles without string lookups.
#[derive(Debug)]
pub struct RunMetrics {
    /// The registry all the handles below are registered in.
    pub registry: MetricsRegistry,
    /// Latency of one fitness evaluation batch, nanoseconds.
    pub batch_latency_ns: Arc<Histogram>,
    /// Wall time of one GA generation (breed + evaluate), nanoseconds.
    pub generation_wall_ns: Arc<Histogram>,
    /// Memoization bookkeeping time per batch, nanoseconds.
    pub cache_lookup_ns: Arc<Histogram>,
    /// Caller wait for fault-group workers at merge time, nanoseconds.
    pub merge_wait_ns: Arc<Histogram>,
    /// GA generations evaluated (initial populations included).
    pub ga_generations: Arc<Counter>,
    /// Fitness evaluations performed.
    pub ga_evaluations: Arc<Counter>,
    /// Current phase of the paper's four-phase machine (1..=4).
    pub phase: Arc<Gauge>,
    /// Test vectors committed so far.
    pub vectors: Arc<Gauge>,
    /// Faults detected so far.
    pub detected: Arc<Gauge>,
    /// Faults targeted by the run.
    pub total_faults: Arc<Gauge>,
    /// Fault coverage so far, percent.
    pub coverage_percent: Arc<Gauge>,
    /// 1 while a run is in flight, 0 otherwise.
    pub run_active: Arc<Gauge>,
}

impl Default for RunMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl RunMetrics {
    /// Creates the bundle with every metric registered under its
    /// `gatest_`-prefixed exposition name.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        RunMetrics {
            batch_latency_ns: registry.histogram(
                "gatest_eval_batch_latency_ns",
                "Latency of one fitness evaluation batch",
            ),
            generation_wall_ns: registry.histogram(
                "gatest_generation_wall_ns",
                "Wall time of one GA generation (breed + evaluate)",
            ),
            cache_lookup_ns: registry.histogram(
                "gatest_cache_lookup_ns",
                "Memoization bookkeeping time per evaluation batch",
            ),
            merge_wait_ns: registry.histogram(
                "gatest_group_merge_wait_ns",
                "Caller wait for fault-group workers at merge time",
            ),
            ga_generations: registry
                .counter("gatest_ga_generations_total", "GA generations evaluated"),
            ga_evaluations: registry.counter(
                "gatest_ga_evaluations_total",
                "Fitness evaluations performed",
            ),
            phase: registry.gauge("gatest_phase", "Current phase of the four-phase machine"),
            vectors: registry.gauge("gatest_vectors", "Test vectors committed"),
            detected: registry.gauge("gatest_detected_faults", "Faults detected"),
            total_faults: registry.gauge("gatest_total_faults", "Faults targeted"),
            coverage_percent: registry.gauge("gatest_coverage_percent", "Fault coverage, percent"),
            run_active: registry.gauge("gatest_run_active", "1 while a run is in flight"),
            registry,
        }
    }
}

/// A [`RunObserver`] that mirrors the event stream into the live gauges of
/// an [`Instruments`] bundle, so `/metrics` and `/healthz` report mid-run
/// progress. Purely read-side: it cannot steer the run.
#[derive(Debug)]
pub struct MetricsObserver {
    instruments: Arc<Instruments>,
}

impl MetricsObserver {
    /// Creates an observer feeding `instruments`.
    pub fn new(instruments: Arc<Instruments>) -> Self {
        MetricsObserver { instruments }
    }
}

impl RunObserver for MetricsObserver {
    fn on_event(&self, event: &RunEvent) {
        let m = &self.instruments.metrics;
        match event {
            RunEvent::RunStarted { total_faults, .. } => {
                m.total_faults.set(*total_faults as f64);
                m.detected.set(0.0);
                m.vectors.set(0.0);
                m.coverage_percent.set(0.0);
                m.run_active.set(1.0);
            }
            RunEvent::PhaseEntered { phase, .. } => {
                m.phase.set(f64::from(*phase));
            }
            RunEvent::GaGenerationEvaluated { evaluations, .. } => {
                m.ga_generations.inc();
                m.ga_evaluations.add(*evaluations as u64);
            }
            RunEvent::VectorCommitted {
                vectors,
                detected_total,
                coverage,
                ..
            } => {
                m.vectors.set(*vectors as f64);
                m.detected.set(*detected_total as f64);
                m.coverage_percent.set(coverage * 100.0);
            }
            RunEvent::FaultDetected { .. } => {}
            RunEvent::RunFinished {
                detected, vectors, ..
            } => {
                m.detected.set(*detected as f64);
                m.vectors.set(*vectors as f64);
                m.run_active.set(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_hold_values() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("test_total", "a counter");
        let g = registry.gauge("test_gauge", "a gauge");
        c.inc();
        c.add(4);
        g.set(2.5);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 2.5);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE test_total counter"));
        assert!(text.contains("test_total 5"));
        assert!(text.contains("test_gauge 2.5"));
    }

    #[test]
    fn bucket_index_and_bound_agree() {
        for v in [
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            100,
            1_000,
            123_456,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(v <= bucket_bound(i), "v={v} above its bucket bound");
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "v={v} below its bucket");
            }
        }
        // Bounds are strictly increasing.
        for i in 1..NBUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1), "bucket {i}");
        }
    }

    #[test]
    fn histogram_tracks_count_sum_min_max_and_quantiles() {
        let h = Histogram::new();
        for v in [100u64, 200, 300, 400, 1_000_000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1_001_000);
        assert_eq!(snap.min, 100);
        assert_eq!(snap.max, 1_000_000);
        assert_eq!(snap.mean(), 200_200.0);
        // The p50 bucket bound is within the scheme's 12.5% error of 300.
        let p50 = snap.quantile(0.5) as f64;
        assert!((200.0..=350.0).contains(&p50), "p50 bound {p50}");
        assert_eq!(snap.quantile(1.0), 1_000_000);
        let empty = Histogram::new().snapshot();
        assert_eq!(empty, HistogramSnapshot::default());
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn histogram_renders_cumulative_prometheus_buckets() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat_ns", "latency");
        h.observe(3);
        h.observe(3);
        h.observe(1_000);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_sum 1006"));
        assert!(text.contains("lat_ns_count 3"));
        // Cumulative counts are monotone.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_ns_bucket")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last);
            last = n;
        }
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let registry = MetricsRegistry::new();
        let _a = registry.counter("dup", "one");
        let _b = registry.counter("dup", "two");
    }

    #[test]
    fn observer_mirrors_events_into_gauges() {
        let instruments = Instruments::new();
        let observer = MetricsObserver::new(Arc::clone(&instruments));
        observer.on_event(&RunEvent::RunStarted {
            circuit: "s27".into(),
            total_faults: 32,
            seed: 1,
            backend: "scalar64".into(),
            lanes: 64,
        });
        observer.on_event(&RunEvent::PhaseEntered {
            phase: 2,
            vectors: 0,
        });
        observer.on_event(&RunEvent::GaGenerationEvaluated {
            phase: 2,
            generation: 0,
            best: 1.0,
            mean: 0.5,
            evaluations: 32,
        });
        observer.on_event(&RunEvent::VectorCommitted {
            phase: 2,
            vectors: 3,
            detected_new: 4,
            detected_total: 16,
            coverage: 0.5,
        });
        let m = &instruments.metrics;
        assert_eq!(m.run_active.get(), 1.0);
        assert_eq!(m.phase.get(), 2.0);
        assert_eq!(m.ga_evaluations.get(), 32);
        assert_eq!(m.coverage_percent.get(), 50.0);
        observer.on_event(&RunEvent::RunFinished {
            detected: 30,
            total_faults: 32,
            vectors: 9,
            ga_evaluations: 640,
            elapsed_secs: 0.5,
            budget_exhausted: false,
            snapshot: Box::default(),
        });
        assert_eq!(m.run_active.get(), 0.0);
        assert_eq!(m.detected.get(), 30.0);
    }
}
