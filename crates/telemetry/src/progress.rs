//! Throttled live progress lines on stderr.

use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::event::RunEvent;
use crate::RunObserver;

/// The reporter's time source. Injectable so throttling is unit-testable
/// without sleeping; the default is [`Instant::now`].
type Clock = Box<dyn Fn() -> Instant + Send + Sync>;

/// Prints a one-line status as the run advances (to stderr by default).
///
/// Lines are throttled to one per `interval` (default 250 ms) so tracing a
/// fast run does not flood the terminal; phase transitions and the final
/// summary always print. A typical line:
///
/// ```text
/// [gatest] phase 2 | vectors 41 | detected 285/320 (89.1%) | 1523 evals/s
/// ```
pub struct ProgressReporter {
    interval: Duration,
    clock: Clock,
    state: Mutex<ProgressState>,
}

struct ProgressState {
    sink: Box<dyn Write + Send>,
    started: Instant,
    last_print: Option<Instant>,
    phase: u8,
    vectors: usize,
    detected: usize,
    total_faults: usize,
    evaluations: u64,
}

impl Default for ProgressReporter {
    fn default() -> Self {
        ProgressReporter::new()
    }
}

impl ProgressReporter {
    /// A reporter with the default 250 ms throttle, printing to stderr.
    pub fn new() -> Self {
        ProgressReporter::with_interval(Duration::from_millis(250))
    }

    /// A reporter printing at most one line per `interval` (phase changes and
    /// the final line are exempt), to stderr, on wall-clock time.
    pub fn with_interval(interval: Duration) -> Self {
        ProgressReporter::with_parts(interval, Box::new(Instant::now), Box::new(StderrSink))
    }

    /// The fully injectable constructor: `clock` supplies the notion of
    /// "now" (throttling, rates) and `sink` receives the lines. Tests pass
    /// a settable clock and a buffer; production uses
    /// [`ProgressReporter::with_interval`].
    pub fn with_parts(interval: Duration, clock: Clock, sink: Box<dyn Write + Send>) -> Self {
        let started = clock();
        ProgressReporter {
            interval,
            clock,
            state: Mutex::new(ProgressState {
                sink,
                started,
                last_print: None,
                phase: 0,
                vectors: 0,
                detected: 0,
                total_faults: 0,
                evaluations: 0,
            }),
        }
    }

    fn print_line(state: &mut ProgressState, now: Instant) {
        let coverage = if state.total_faults > 0 {
            100.0 * state.detected as f64 / state.total_faults as f64
        } else {
            0.0
        };
        let elapsed = now.duration_since(state.started).as_secs_f64();
        let rate = if elapsed > 0.0 {
            state.evaluations as f64 / elapsed
        } else {
            0.0
        };
        let _ = writeln!(
            state.sink,
            "[gatest] phase {} | vectors {} | detected {}/{} ({:.1}%) | {:.0} evals/s",
            state.phase, state.vectors, state.detected, state.total_faults, coverage, rate
        );
        state.last_print = Some(now);
    }
}

/// Writes through to a freshly locked stderr per line, so concurrent
/// writers interleave at line granularity.
struct StderrSink;

impl Write for StderrSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        std::io::stderr().lock().write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        std::io::stderr().lock().flush()
    }
}

impl RunObserver for ProgressReporter {
    fn on_event(&self, event: &RunEvent) {
        let mut state = self.state.lock().expect("progress reporter poisoned");
        let now = (self.clock)();
        let mut force = false;
        match event {
            RunEvent::RunStarted { total_faults, .. } => {
                state.started = now;
                state.total_faults = *total_faults;
                return;
            }
            RunEvent::PhaseEntered { phase, vectors } => {
                state.phase = *phase;
                state.vectors = *vectors;
                force = true;
            }
            RunEvent::GaGenerationEvaluated { evaluations, .. } => {
                state.evaluations += *evaluations as u64;
            }
            RunEvent::VectorCommitted {
                vectors,
                detected_total,
                ..
            } => {
                state.vectors = *vectors;
                state.detected = *detected_total;
            }
            RunEvent::FaultDetected { .. } => return,
            RunEvent::RunFinished {
                detected, vectors, ..
            } => {
                state.detected = *detected;
                state.vectors = *vectors;
                force = true;
            }
        }
        let due = match state.last_print {
            None => true,
            Some(last) => now.duration_since(last) >= self.interval,
        };
        if force || due {
            Self::print_line(&mut state, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A manually advanced clock: `base + offset_ms`.
    fn test_clock(offset_ms: Arc<AtomicU64>) -> Clock {
        let base = Instant::now();
        Box::new(move || base + Duration::from_millis(offset_ms.load(Ordering::Relaxed)))
    }

    /// A `Write` sink sharing its buffer with the test.
    #[derive(Clone, Default)]
    struct SharedSink(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedSink {
        fn lines(&self) -> Vec<String> {
            String::from_utf8(self.0.lock().unwrap().clone())
                .unwrap()
                .lines()
                .map(str::to_owned)
                .collect()
        }
    }

    fn committed(vectors: usize, detected_total: usize) -> RunEvent {
        RunEvent::VectorCommitted {
            phase: 2,
            vectors,
            detected_new: 1,
            detected_total,
            coverage: 0.0,
        }
    }

    #[test]
    fn accumulates_state_across_events() {
        // Output goes to stderr; here we only exercise the state machine.
        let reporter = ProgressReporter::with_interval(Duration::from_secs(3600));
        reporter.on_event(&RunEvent::RunStarted {
            circuit: "s27".into(),
            total_faults: 26,
            seed: 1,
            backend: "scalar64".into(),
            lanes: 64,
        });
        reporter.on_event(&RunEvent::PhaseEntered {
            phase: 2,
            vectors: 0,
        });
        reporter.on_event(&RunEvent::GaGenerationEvaluated {
            phase: 2,
            generation: 0,
            best: 1.0,
            mean: 0.5,
            evaluations: 32,
        });
        reporter.on_event(&committed(4, 10));
        let state = reporter.state.lock().unwrap();
        assert_eq!(state.phase, 2);
        assert_eq!(state.vectors, 4);
        assert_eq!(state.detected, 10);
        assert_eq!(state.total_faults, 26);
        assert_eq!(state.evaluations, 32);
        // The forced phase line printed despite the huge throttle interval.
        assert!(state.last_print.is_some());
    }

    #[test]
    fn throttles_to_one_line_per_interval() {
        let offset = Arc::new(AtomicU64::new(0));
        let sink = SharedSink::default();
        let reporter = ProgressReporter::with_parts(
            Duration::from_millis(250),
            test_clock(Arc::clone(&offset)),
            Box::new(sink.clone()),
        );
        // First commit prints (nothing printed yet); the next two within
        // the interval are swallowed.
        reporter.on_event(&committed(1, 1));
        offset.store(100, Ordering::Relaxed);
        reporter.on_event(&committed(2, 2));
        offset.store(200, Ordering::Relaxed);
        reporter.on_event(&committed(3, 3));
        assert_eq!(sink.lines().len(), 1);
        // Crossing the interval prints again, with the *latest* state.
        offset.store(260, Ordering::Relaxed);
        reporter.on_event(&committed(4, 9));
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("vectors 4"), "{}", lines[1]);
        assert!(lines[1].contains("detected 9"), "{}", lines[1]);
    }

    #[test]
    fn phase_changes_bypass_the_throttle() {
        let offset = Arc::new(AtomicU64::new(0));
        let sink = SharedSink::default();
        let reporter = ProgressReporter::with_parts(
            Duration::from_secs(3600),
            test_clock(Arc::clone(&offset)),
            Box::new(sink.clone()),
        );
        reporter.on_event(&committed(1, 1));
        reporter.on_event(&RunEvent::PhaseEntered {
            phase: 3,
            vectors: 1,
        });
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("phase 3"));
    }

    #[test]
    fn final_line_always_flushes_with_run_totals_and_rate() {
        let offset = Arc::new(AtomicU64::new(0));
        let sink = SharedSink::default();
        let reporter = ProgressReporter::with_parts(
            Duration::from_secs(3600),
            test_clock(Arc::clone(&offset)),
            Box::new(sink.clone()),
        );
        reporter.on_event(&RunEvent::RunStarted {
            circuit: "s27".into(),
            total_faults: 26,
            seed: 1,
            backend: "scalar64".into(),
            lanes: 64,
        });
        reporter.on_event(&RunEvent::GaGenerationEvaluated {
            phase: 2,
            generation: 0,
            best: 1.0,
            mean: 0.5,
            evaluations: 500,
        });
        reporter.on_event(&committed(1, 1)); // prints: first line
                                             // Two seconds later the run finishes: the final line must print
                                             // despite the one-hour throttle, with a rate of 500/2s.
        offset.store(2_000, Ordering::Relaxed);
        reporter.on_event(&RunEvent::RunFinished {
            detected: 25,
            total_faults: 26,
            vectors: 9,
            ga_evaluations: 500,
            elapsed_secs: 2.0,
            budget_exhausted: false,
            snapshot: Box::default(),
        });
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        let last = lines.last().unwrap();
        assert!(last.contains("detected 25/26"), "{last}");
        assert!(last.contains("vectors 9"), "{last}");
        assert!(last.contains("250 evals/s"), "{last}");
    }

    #[test]
    fn run_started_resets_the_rate_base_without_printing() {
        let offset = Arc::new(AtomicU64::new(5_000));
        let sink = SharedSink::default();
        let reporter = ProgressReporter::with_parts(
            Duration::from_millis(250),
            test_clock(Arc::clone(&offset)),
            Box::new(sink.clone()),
        );
        reporter.on_event(&RunEvent::RunStarted {
            circuit: "s27".into(),
            total_faults: 26,
            seed: 1,
            backend: "scalar64".into(),
            lanes: 64,
        });
        assert!(sink.lines().is_empty(), "run_started must not print");
    }
}
