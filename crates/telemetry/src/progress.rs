//! Throttled live progress lines on stderr.

use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::event::RunEvent;
use crate::RunObserver;

/// Prints a one-line status to stderr as the run advances.
///
/// Lines are throttled to one per `interval` (default 250 ms) so tracing a
/// fast run does not flood the terminal; phase transitions and the final
/// summary always print. A typical line:
///
/// ```text
/// [gatest] phase 2 | vectors 41 | detected 285/320 (89.1%) | 1523 evals/s
/// ```
pub struct ProgressReporter {
    interval: Duration,
    state: Mutex<ProgressState>,
}

struct ProgressState {
    started: Instant,
    last_print: Option<Instant>,
    phase: u8,
    vectors: usize,
    detected: usize,
    total_faults: usize,
    evaluations: u64,
}

impl Default for ProgressReporter {
    fn default() -> Self {
        ProgressReporter::new()
    }
}

impl ProgressReporter {
    /// A reporter with the default 250 ms throttle.
    pub fn new() -> Self {
        ProgressReporter::with_interval(Duration::from_millis(250))
    }

    /// A reporter printing at most one line per `interval` (phase changes and
    /// the final line are exempt).
    pub fn with_interval(interval: Duration) -> Self {
        ProgressReporter {
            interval,
            state: Mutex::new(ProgressState {
                started: Instant::now(),
                last_print: None,
                phase: 0,
                vectors: 0,
                detected: 0,
                total_faults: 0,
                evaluations: 0,
            }),
        }
    }

    fn print_line(state: &mut ProgressState, now: Instant) {
        let coverage = if state.total_faults > 0 {
            100.0 * state.detected as f64 / state.total_faults as f64
        } else {
            0.0
        };
        let elapsed = now.duration_since(state.started).as_secs_f64();
        let rate = if elapsed > 0.0 {
            state.evaluations as f64 / elapsed
        } else {
            0.0
        };
        let mut err = std::io::stderr().lock();
        let _ = writeln!(
            err,
            "[gatest] phase {} | vectors {} | detected {}/{} ({:.1}%) | {:.0} evals/s",
            state.phase, state.vectors, state.detected, state.total_faults, coverage, rate
        );
        state.last_print = Some(now);
    }
}

impl RunObserver for ProgressReporter {
    fn on_event(&self, event: &RunEvent) {
        let mut state = self.state.lock().expect("progress reporter poisoned");
        let now = Instant::now();
        let mut force = false;
        match event {
            RunEvent::RunStarted { total_faults, .. } => {
                state.started = now;
                state.total_faults = *total_faults;
                return;
            }
            RunEvent::PhaseEntered { phase, vectors } => {
                state.phase = *phase;
                state.vectors = *vectors;
                force = true;
            }
            RunEvent::GaGenerationEvaluated { evaluations, .. } => {
                state.evaluations += *evaluations as u64;
            }
            RunEvent::VectorCommitted {
                vectors,
                detected_total,
                ..
            } => {
                state.vectors = *vectors;
                state.detected = *detected_total;
            }
            RunEvent::FaultDetected { .. } => return,
            RunEvent::RunFinished {
                detected, vectors, ..
            } => {
                state.detected = *detected;
                state.vectors = *vectors;
                force = true;
            }
        }
        let due = match state.last_print {
            None => true,
            Some(last) => now.duration_since(last) >= self.interval,
        };
        if force || due {
            Self::print_line(&mut state, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_state_across_events() {
        // Output goes to stderr; here we only exercise the state machine.
        let reporter = ProgressReporter::with_interval(Duration::from_secs(3600));
        reporter.on_event(&RunEvent::RunStarted {
            circuit: "s27".into(),
            total_faults: 26,
            seed: 1,
        });
        reporter.on_event(&RunEvent::PhaseEntered {
            phase: 2,
            vectors: 0,
        });
        reporter.on_event(&RunEvent::GaGenerationEvaluated {
            phase: 2,
            generation: 0,
            best: 1.0,
            mean: 0.5,
            evaluations: 32,
        });
        reporter.on_event(&RunEvent::VectorCommitted {
            phase: 2,
            vectors: 4,
            detected_new: 2,
            detected_total: 10,
            coverage: 10.0 / 26.0,
        });
        let state = reporter.state.lock().unwrap();
        assert_eq!(state.phase, 2);
        assert_eq!(state.vectors, 4);
        assert_eq!(state.detected, 10);
        assert_eq!(state.total_faults, 26);
        assert_eq!(state.evaluations, 32);
        // The forced phase line printed despite the huge throttle interval.
        assert!(state.last_print.is_some());
    }
}
