//! The per-run telemetry aggregate embedded in test-generation results.

use std::time::Duration;

use crate::counters::CounterSnapshot;
use crate::span::SpanSnapshot;

/// Final telemetry of one test-generation run.
///
/// Embedded in `TestGenResult` so reports and benches can print an extended
/// stats table without re-running anything, and serialized into the
/// `run_finished` JSONL trace event.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Wall-clock time spent while the phase machine was in each of the
    /// paper's four phases (index 0 = phase 1).
    pub phase_time: [Duration; 4],
    /// GA generations evolved across all invocations (initial populations
    /// included, matching `GaGenerationEvaluated` emission).
    pub ga_generations: u64,
    /// Simulator hot-path counter totals.
    pub counters: CounterSnapshot,
    /// Merged hierarchical span aggregates (empty unless the run was
    /// instrumented; spans are process-local and excluded from run-state
    /// checkpoints, so a resumed run restarts span accumulation).
    pub spans: SpanSnapshot,
}

impl TelemetrySnapshot {
    /// Total time attributed to the four phases.
    pub fn phased_time(&self) -> Duration {
        self.phase_time.iter().sum()
    }

    /// Fitness evaluations per second, given the run's totals.
    pub fn evals_per_sec(&self, ga_evaluations: usize, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            ga_evaluations as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean simulator events (good + faulty) per simulated step.
    pub fn events_per_step(&self) -> f64 {
        let steps = self.counters.total_steps();
        if steps > 0 {
            (self.counters.good_events + self.counters.faulty_events) as f64 / steps as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_handle_zero_denominators() {
        let snap = TelemetrySnapshot::default();
        assert_eq!(snap.evals_per_sec(100, Duration::ZERO), 0.0);
        assert_eq!(snap.events_per_step(), 0.0);
        assert_eq!(snap.phased_time(), Duration::ZERO);
    }

    #[test]
    fn derived_rates_compute() {
        let snap = TelemetrySnapshot {
            phase_time: [
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::ZERO,
                Duration::from_millis(30),
            ],
            ga_generations: 9,
            counters: CounterSnapshot {
                step_calls: 8,
                good_only_calls: 2,
                good_events: 40,
                faulty_events: 60,
                ..CounterSnapshot::default()
            },
            spans: SpanSnapshot::default(),
        };
        assert_eq!(snap.phased_time(), Duration::from_millis(60));
        assert_eq!(snap.evals_per_sec(50, Duration::from_secs(2)), 25.0);
        assert_eq!(snap.events_per_step(), 10.0);
    }
}
