//! Hierarchical timing spans: a guard API recorded into per-thread
//! lock-free rings and aggregated into an exclusive/inclusive time tree.
//!
//! The span hierarchy mirrors the generator's hot path
//! (`run > generation > eval_batch > sim_step / cache_lookup / merge`), so a
//! finished run can attribute wall time to simulation, cache bookkeeping,
//! breeding, and pool coordination without a profiler.
//!
//! # Design
//!
//! Every participating thread owns one [`SpanHandle`] backed by a slot
//! registered with the shared [`SpanCollector`]. All slot state is relaxed
//! atomics written only by the owning thread, so entering and leaving a span
//! costs two clock reads and a handful of uncontended atomic stores — cheap
//! enough to leave enabled on every instrumented run (the `bench_eval`
//! overhead gate holds it under 2% of serial throughput). Aggregation is
//! keyed by `(kind, parent kind)` rather than by full path, which keeps the
//! per-thread table a fixed 7×8 array; the last [`RING_CAP`] raw records per
//! thread are kept in a wrapping ring for debugging and the `/healthz`
//! snapshot.
//!
//! Instrumentation never feeds back into the run: spans observe timing only,
//! so observed and unobserved runs are bit-identical (the property
//! `tests/telemetry.rs` locks down).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The fixed vocabulary of span kinds, mirroring the generator's hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SpanKind {
    /// One whole `TestGenerator` drive (outermost).
    Run = 0,
    /// One GA generation: selection, breeding, and offspring evaluation.
    Generation = 1,
    /// One batch handed to the fitness path (memo + raw evaluation).
    EvalBatch = 2,
    /// Raw fault simulation (serial eval path and pool worker chunks).
    SimStep = 3,
    /// Memoization bookkeeping: cache probes, dedup, prefix sort.
    CacheLookup = 4,
    /// Fault-group outcome merge (including the wait for stragglers).
    Merge = 5,
    /// GA selection + crossover + mutation, excluding evaluation.
    Breed = 6,
}

/// Number of distinct span kinds.
const NKINDS: usize = 7;
/// Parent index used for top-level spans (no enclosing span).
const ROOT: usize = NKINDS;
/// Deepest tracked nesting; deeper spans are counted as dropped.
const MAX_DEPTH: usize = 16;
/// Raw records kept per thread (wrapping).
const RING_CAP: usize = 256;

impl SpanKind {
    /// Every kind, in tag order.
    pub const ALL: [SpanKind; NKINDS] = [
        SpanKind::Run,
        SpanKind::Generation,
        SpanKind::EvalBatch,
        SpanKind::SimStep,
        SpanKind::CacheLookup,
        SpanKind::Merge,
        SpanKind::Breed,
    ];

    /// The kind's stable snake_case name (used in traces and `/metrics`).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Generation => "generation",
            SpanKind::EvalBatch => "eval_batch",
            SpanKind::SimStep => "sim_step",
            SpanKind::CacheLookup => "cache_lookup",
            SpanKind::Merge => "merge",
            SpanKind::Breed => "breed",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn from_name(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    fn from_index(i: usize) -> Option<SpanKind> {
        SpanKind::ALL.get(i).copied()
    }
}

/// One `(count, inclusive, exclusive)` aggregate cell.
#[derive(Default)]
struct AggCell {
    count: AtomicU64,
    incl_ns: AtomicU64,
    excl_ns: AtomicU64,
}

/// One stack frame / ring record: `meta = kind | parent << 8`.
#[derive(Default)]
struct Cell3 {
    meta: AtomicU64,
    start_ns: AtomicU64,
    /// Accumulated child time for stack frames; duration for ring records.
    ns: AtomicU64,
}

/// Per-thread span state. Only the owning thread writes; the collector
/// reads concurrently with relaxed loads (aggregates are monotone, and the
/// ring is debugging data where a torn read across fields is acceptable).
struct ThreadSpans {
    epoch: Instant,
    depth: AtomicUsize,
    frames: [Cell3; MAX_DEPTH],
    agg: Vec<AggCell>,
    ring: Vec<Cell3>,
    cursor: AtomicU64,
    dropped: AtomicU64,
}

impl ThreadSpans {
    fn new(epoch: Instant) -> Self {
        ThreadSpans {
            epoch,
            depth: AtomicUsize::new(0),
            frames: Default::default(),
            agg: (0..NKINDS * (NKINDS + 1))
                .map(|_| AggCell::default())
                .collect(),
            ring: (0..RING_CAP).map(|_| Cell3::default()).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn current_parent(&self, depth: usize) -> usize {
        if depth == 0 {
            ROOT
        } else {
            (self.frames[depth - 1].meta.load(Relaxed) & 0xff) as usize
        }
    }

    fn aggregate(&self, kind: usize, parent: usize, incl_ns: u64, excl_ns: u64) {
        let cell = &self.agg[kind * (NKINDS + 1) + parent];
        cell.count.fetch_add(1, Relaxed);
        cell.incl_ns.fetch_add(incl_ns, Relaxed);
        cell.excl_ns.fetch_add(excl_ns, Relaxed);
    }

    fn push_record(&self, kind: usize, parent: usize, start_ns: u64, dur_ns: u64) {
        let i = (self.cursor.fetch_add(1, Relaxed) as usize) % RING_CAP;
        let slot = &self.ring[i];
        slot.meta
            .store(kind as u64 | ((parent as u64) << 8), Relaxed);
        slot.start_ns.store(start_ns, Relaxed);
        slot.ns.store(dur_ns, Relaxed);
    }
}

/// A per-thread span recorder obtained from [`SpanCollector::handle`].
///
/// Cloning is cheap (an `Arc` bump) but clones share one span stack, so a
/// handle must only ever be driven from one thread at a time — the intended
/// use is one handle per worker thread. Misuse cannot corrupt memory (all
/// state is atomic), only attribution.
#[derive(Debug, Clone)]
pub struct SpanHandle {
    slot: Arc<ThreadSpans>,
}

impl std::fmt::Debug for ThreadSpans {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadSpans")
            .field("depth", &self.depth.load(Relaxed))
            .field("records", &self.cursor.load(Relaxed))
            .finish()
    }
}

impl SpanHandle {
    /// Opens a span of `kind` nested under the handle's current span (or at
    /// the root). The span closes — and its timing is recorded — when the
    /// returned guard drops.
    pub fn enter(&self, kind: SpanKind) -> SpanGuard {
        let t = &*self.slot;
        let depth = t.depth.load(Relaxed);
        if depth >= MAX_DEPTH {
            t.dropped.fetch_add(1, Relaxed);
            return SpanGuard {
                slot: Arc::clone(&self.slot),
                active: false,
            };
        }
        let parent = t.current_parent(depth);
        let frame = &t.frames[depth];
        frame
            .meta
            .store(kind as u64 | ((parent as u64) << 8), Relaxed);
        frame.start_ns.store(t.now_ns(), Relaxed);
        frame.ns.store(0, Relaxed);
        t.depth.store(depth + 1, Relaxed);
        SpanGuard {
            slot: Arc::clone(&self.slot),
            active: true,
        }
    }

    /// Records an already-measured leaf span of `kind` under the current
    /// span, as if it had just finished. Used where the measured section
    /// cannot own a guard (e.g. time derived as a difference).
    pub fn record(&self, kind: SpanKind, dur: Duration) {
        let t = &*self.slot;
        let dur_ns = dur.as_nanos() as u64;
        let depth = t.depth.load(Relaxed);
        let parent = t.current_parent(depth);
        if depth > 0 {
            // The recorded time elapsed inside the enclosing span's window,
            // so it must not count toward that span's exclusive time.
            t.frames[depth - 1].ns.fetch_add(dur_ns, Relaxed);
        }
        t.aggregate(kind as usize, parent, dur_ns, dur_ns);
        t.push_record(
            kind as usize,
            parent,
            t.now_ns().saturating_sub(dur_ns),
            dur_ns,
        );
    }
}

/// Closes its span on drop. Returned by [`SpanHandle::enter`].
#[derive(Debug)]
pub struct SpanGuard {
    slot: Arc<ThreadSpans>,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let t = &*self.slot;
        let depth = t.depth.load(Relaxed) - 1;
        t.depth.store(depth, Relaxed);
        let frame = &t.frames[depth];
        let meta = frame.meta.load(Relaxed);
        let kind = (meta & 0xff) as usize;
        let parent = ((meta >> 8) & 0xff) as usize;
        let start_ns = frame.start_ns.load(Relaxed);
        let dur_ns = t.now_ns().saturating_sub(start_ns);
        let excl_ns = dur_ns.saturating_sub(frame.ns.load(Relaxed));
        if depth > 0 {
            t.frames[depth - 1].ns.fetch_add(dur_ns, Relaxed);
        }
        t.aggregate(kind, parent, dur_ns, excl_ns);
        t.push_record(kind, parent, start_ns, dur_ns);
    }
}

/// The shared span sink: hands out per-thread [`SpanHandle`]s and merges
/// their aggregates into a [`SpanSnapshot`].
#[derive(Debug)]
pub struct SpanCollector {
    epoch: Instant,
    threads: Mutex<Vec<Arc<ThreadSpans>>>,
}

impl Default for SpanCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanCollector {
    /// Creates an empty collector; its creation instant is the epoch all
    /// span start offsets are measured from.
    pub fn new() -> Self {
        SpanCollector {
            epoch: Instant::now(),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Registers a new per-thread recording slot and returns its handle.
    pub fn handle(&self) -> SpanHandle {
        let slot = Arc::new(ThreadSpans::new(self.epoch));
        self.threads.lock().unwrap().push(Arc::clone(&slot));
        SpanHandle { slot }
    }

    /// Spans dropped because they nested deeper than the tracked maximum.
    pub fn dropped(&self) -> u64 {
        self.threads
            .lock()
            .unwrap()
            .iter()
            .map(|t| t.dropped.load(Relaxed))
            .sum()
    }

    /// Merges every thread's aggregates into one `(kind, parent)` tree.
    /// Nodes appear root-parented first, then grouped by parent kind, and
    /// only `(kind, parent)` pairs that actually occurred are included.
    pub fn snapshot(&self) -> SpanSnapshot {
        let threads = self.threads.lock().unwrap();
        let mut nodes = Vec::new();
        let parents = std::iter::once(ROOT).chain(0..NKINDS);
        for parent in parents {
            for kind in 0..NKINDS {
                let idx = kind * (NKINDS + 1) + parent;
                let (mut count, mut incl, mut excl) = (0u64, 0u64, 0u64);
                for t in threads.iter() {
                    let cell = &t.agg[idx];
                    count += cell.count.load(Relaxed);
                    incl += cell.incl_ns.load(Relaxed);
                    excl += cell.excl_ns.load(Relaxed);
                }
                if count > 0 {
                    nodes.push(SpanNode {
                        kind: SpanKind::from_index(kind)
                            .expect("kind in range")
                            .name()
                            .into(),
                        parent: SpanKind::from_index(parent).map(|p| p.name().into()),
                        count,
                        incl_ns: incl,
                        excl_ns: excl,
                    });
                }
            }
        }
        SpanSnapshot { nodes }
    }

    /// The most recent raw records across all threads, oldest first, at most
    /// `max`. Records may be torn while writers are active; this is
    /// debugging data, not an accounting source.
    pub fn recent(&self, max: usize) -> Vec<SpanRecord> {
        let threads = self.threads.lock().unwrap();
        let mut records = Vec::new();
        for t in threads.iter() {
            let written = t.cursor.load(Relaxed);
            let live = (written as usize).min(RING_CAP);
            for back in 0..live {
                let i = (written as usize - 1 - back) % RING_CAP;
                let slot = &t.ring[i];
                let meta = slot.meta.load(Relaxed);
                let Some(kind) = SpanKind::from_index((meta & 0xff) as usize) else {
                    continue;
                };
                records.push(SpanRecord {
                    kind,
                    parent: SpanKind::from_index(((meta >> 8) & 0xff) as usize),
                    start_ns: slot.start_ns.load(Relaxed),
                    dur_ns: slot.ns.load(Relaxed),
                });
            }
        }
        records.sort_by_key(|r| r.start_ns);
        if records.len() > max {
            records.drain(..records.len() - max);
        }
        records
    }
}

/// One raw span occurrence from a thread's ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's kind.
    pub kind: SpanKind,
    /// The enclosing span's kind, if any.
    pub parent: Option<SpanKind>,
    /// Start offset from the collector's epoch.
    pub start_ns: u64,
    /// Duration.
    pub dur_ns: u64,
}

/// The merged `(kind, parent)` aggregate tree of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Aggregate nodes, root-parented first (see
    /// [`SpanCollector::snapshot`] for ordering).
    pub nodes: Vec<SpanNode>,
}

impl SpanSnapshot {
    /// `true` when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node for `kind` under `parent`, if it occurred.
    pub fn get(&self, kind: &str, parent: Option<&str>) -> Option<&SpanNode> {
        self.nodes
            .iter()
            .find(|n| n.kind == kind && n.parent.as_deref() == parent)
    }

    /// Total inclusive time of `kind` summed over all parents.
    pub fn total_incl_ns(&self, kind: &str) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.kind == kind)
            .map(|n| n.incl_ns)
            .sum()
    }
}

/// One aggregated `(kind, parent)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span kind name (see [`SpanKind::name`]).
    pub kind: String,
    /// Parent kind name; `None` for top-level spans.
    pub parent: Option<String>,
    /// Completed spans aggregated into this node.
    pub count: u64,
    /// Summed wall time from entry to exit.
    pub incl_ns: u64,
    /// Summed wall time not attributed to child spans.
    pub excl_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::from_name("nope"), None);
    }

    #[test]
    fn nested_guards_build_a_parent_keyed_tree() {
        let collector = SpanCollector::new();
        let handle = collector.handle();
        {
            let _run = handle.enter(SpanKind::Run);
            for _ in 0..3 {
                let _generation = handle.enter(SpanKind::Generation);
                let _batch = handle.enter(SpanKind::EvalBatch);
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let snap = collector.snapshot();
        let run = snap.get("run", None).expect("root run node");
        assert_eq!(run.count, 1);
        let generation = snap.get("generation", Some("run")).expect("generation");
        assert_eq!(generation.count, 3);
        let batch = snap.get("eval_batch", Some("generation")).expect("batch");
        assert_eq!(batch.count, 3);
        // Inclusive times telescope: run covers its generations, which
        // cover their batches.
        assert!(run.incl_ns >= generation.incl_ns);
        assert!(generation.incl_ns >= batch.incl_ns);
        // Exclusive excludes children: generation spent nearly all its time
        // inside eval_batch.
        assert!(generation.excl_ns <= generation.incl_ns - batch.incl_ns + 1_000_000);
        assert_eq!(snap.get("generation", None), None, "never root-parented");
        assert_eq!(collector.dropped(), 0);
    }

    #[test]
    fn manual_records_attach_to_the_current_parent() {
        let collector = SpanCollector::new();
        let handle = collector.handle();
        {
            let _batch = handle.enter(SpanKind::EvalBatch);
            handle.record(SpanKind::CacheLookup, Duration::from_micros(250));
        }
        handle.record(SpanKind::Merge, Duration::from_micros(10));
        let snap = collector.snapshot();
        let lookup = snap.get("cache_lookup", Some("eval_batch")).unwrap();
        assert_eq!(lookup.count, 1);
        assert_eq!(lookup.incl_ns, 250_000);
        assert_eq!(lookup.excl_ns, 250_000);
        // The recorded time is excluded from the parent's exclusive time.
        let batch = snap.get("eval_batch", None).unwrap();
        assert!(batch.excl_ns <= batch.incl_ns.saturating_sub(250_000));
        let merge = snap.get("merge", None).unwrap();
        assert_eq!(merge.incl_ns, 10_000);
    }

    #[test]
    fn over_deep_nesting_is_dropped_not_corrupted() {
        let collector = SpanCollector::new();
        let handle = collector.handle();
        let guards: Vec<SpanGuard> = (0..MAX_DEPTH + 5)
            .map(|_| handle.enter(SpanKind::SimStep))
            .collect();
        drop(guards);
        assert_eq!(collector.dropped(), 5);
        let snap = collector.snapshot();
        let total: u64 = snap.nodes.iter().map(|n| n.count).sum();
        assert_eq!(total, MAX_DEPTH as u64);
    }

    #[test]
    fn threads_merge_into_one_snapshot() {
        let collector = Arc::new(SpanCollector::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let handle = collector.handle();
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let _g = handle.enter(SpanKind::SimStep);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = collector.snapshot();
        assert_eq!(snap.get("sim_step", None).unwrap().count, 40);
        assert_eq!(snap.total_incl_ns("sim_step"), snap.nodes[0].incl_ns);
    }

    #[test]
    fn ring_keeps_the_most_recent_records() {
        let collector = SpanCollector::new();
        let handle = collector.handle();
        for _ in 0..RING_CAP + 10 {
            let _g = handle.enter(SpanKind::Merge);
        }
        let recent = collector.recent(16);
        assert_eq!(recent.len(), 16);
        assert!(recent.iter().all(|r| r.kind == SpanKind::Merge));
        assert!(
            recent.windows(2).all(|w| w[0].start_ns <= w[1].start_ns),
            "records are ordered by start"
        );
        assert_eq!(collector.recent(usize::MAX).len(), RING_CAP);
    }
}
