//! Property tests: everything the hand-rolled JSON writers in
//! `gatest-telemetry` emit must round-trip through the hand-rolled parser.
//!
//! One representational constraint shapes the generators: [`Json`] stores
//! numbers as `f64`, so integers are exact only below 2^53 and every `u64`
//! strategy here stays under that bound. The writers never emit larger
//! values for the fields these tests cover (span/histogram nanosecond
//! totals would need a >104-day run to overflow 2^53).

use gatest_telemetry::json::{
    event_to_json, histogram_from_json, histogram_to_json, parse_json, quote, spans_from_json,
    spans_to_json, Json,
};
use gatest_telemetry::{HistogramSnapshot, RunEvent, SpanNode, SpanSnapshot};
use proptest::collection::vec;
use proptest::prelude::*;

/// Largest u64 that survives an f64 round trip with integral exactness.
const MAX_SAFE: u64 = (1u64 << 53) - 1;

/// Unsigned integers that stay integral through `f64`: mostly small values,
/// with the full safe range and its endpoint mixed in.
fn safe_u64() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..1024, 0u64..=MAX_SAFE, Just(MAX_SAFE), Just(0u64)]
}

/// Strings biased toward everything the escaper must handle: plain ASCII,
/// quotes, backslashes, named escapes, raw control characters (forced
/// through `\u00xx`), and multi-byte UTF-8 up to an astral-plane scalar.
fn text() -> impl Strategy<Value = String> {
    let glyph = prop_oneof![
        (0x20u32..0x7f).prop_map(|c| char::from_u32(c).expect("printable ascii")),
        Just('"'),
        Just('\\'),
        Just('\n'),
        Just('\r'),
        Just('\t'),
        (0u32..0x20).prop_map(|c| char::from_u32(c).expect("control char")),
        Just('\u{8}'),
        Just('\u{c}'),
        Just('π'),
        Just('鬼'),
        Just('🦀'),
        Just('\u{fffd}'),
    ];
    vec(glyph, 0..12usize).prop_map(|chars| chars.into_iter().collect())
}

/// A finite JSON number: exact integers, negated integers, and arbitrary
/// finite floats (Rust's `{}` float formatting is shortest-round-trip, so
/// parsing the rendering recovers identical bits). NaN/infinity are
/// excluded by construction — the writers map them to `0`.
fn number() -> impl Strategy<Value = f64> {
    prop_oneof![
        safe_u64().prop_map(|v| v as f64),
        safe_u64().prop_map(|v| -(v as f64)),
        -1.0e18f64..1.0e18,
        -1.0f64..1.0,
    ]
}

fn json_leaf() -> impl Strategy<Value = Json> + 'static {
    prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        number().prop_map(Json::Num),
        text().prop_map(Json::Str),
    ]
}

/// Arbitrary JSON documents nested up to `depth` levels of containers.
/// Duplicate object keys are allowed — the parser keeps members in source
/// order, so they round-trip too.
fn json_value(depth: u32) -> Box<dyn Strategy<Value = Json>> {
    if depth == 0 {
        return Box::new(json_leaf());
    }
    Box::new(prop_oneof![
        json_leaf(),
        vec(json_value(depth - 1), 0..4usize).prop_map(Json::Arr),
        vec((text(), json_value(depth - 1)), 0..4usize).prop_map(Json::Obj),
    ])
}

fn span_node() -> impl Strategy<Value = SpanNode> {
    (
        text(),
        prop_oneof![Just(None), text().prop_map(Some)],
        safe_u64(),
        safe_u64(),
        safe_u64(),
    )
        .prop_map(|(kind, parent, count, incl_ns, excl_ns)| SpanNode {
            kind,
            parent,
            count,
            incl_ns,
            excl_ns,
        })
}

fn histogram_snapshot() -> impl Strategy<Value = HistogramSnapshot> {
    (
        safe_u64(),
        safe_u64(),
        safe_u64(),
        safe_u64(),
        vec((safe_u64(), safe_u64()), 0..16usize),
    )
        .prop_map(|(count, sum, min, max, buckets)| HistogramSnapshot {
            count,
            sum,
            min,
            max,
            buckets,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quoted_strings_round_trip(s in text()) {
        let parsed = parse_json(&quote(&s)).expect("quote() output must parse");
        prop_assert_eq!(parsed, Json::Str(s));
    }

    #[test]
    fn rendered_values_reparse_identically(value in json_value(3)) {
        let text = value.render();
        let parsed = parse_json(&text).expect("render() output must parse");
        prop_assert_eq!(parsed, value);
    }

    #[test]
    fn rendering_is_a_fixed_point(value in json_value(2)) {
        // render -> parse -> render must converge after one step.
        let once = value.render();
        let twice = parse_json(&once).expect("must parse").render();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn span_snapshots_round_trip(nodes in vec(span_node(), 0..8usize)) {
        let snapshot = SpanSnapshot { nodes };
        let text = spans_to_json(&snapshot);
        let parsed = parse_json(&text).expect("spans_to_json output must parse");
        prop_assert_eq!(spans_from_json(&parsed), Some(snapshot));
    }

    #[test]
    fn histogram_snapshots_round_trip(snapshot in histogram_snapshot()) {
        let text = histogram_to_json(&snapshot);
        let parsed = parse_json(&text).expect("histogram_to_json output must parse");
        prop_assert_eq!(histogram_from_json(&parsed), Some(snapshot));
    }

    #[test]
    fn run_started_events_survive_evil_circuit_names(
        circuit in text(),
        total_faults in 0usize..1_000_000,
        seed in safe_u64(),
        backend in text(),
        lanes in 0usize..4096,
    ) {
        let event = RunEvent::RunStarted {
            circuit: circuit.clone(),
            total_faults,
            seed,
            backend: backend.clone(),
            lanes,
        };
        let parsed = parse_json(&event_to_json(&event)).expect("event must parse");
        prop_assert_eq!(parsed.get("event").and_then(Json::as_str), Some("run_started"));
        prop_assert_eq!(parsed.get("circuit").and_then(Json::as_str), Some(circuit.as_str()));
        prop_assert_eq!(
            parsed.get("total_faults").and_then(Json::as_u64),
            Some(total_faults as u64)
        );
        prop_assert_eq!(parsed.get("seed").and_then(Json::as_u64), Some(seed));
        prop_assert_eq!(parsed.get("backend").and_then(Json::as_str), Some(backend.as_str()));
        prop_assert_eq!(parsed.get("lanes").and_then(Json::as_u64), Some(lanes as u64));
    }

    #[test]
    fn ga_generation_events_preserve_float_fitness(
        best in number(),
        mean in number(),
        generation in 0usize..100_000,
    ) {
        let event = RunEvent::GaGenerationEvaluated {
            phase: 2,
            generation,
            best,
            mean,
            evaluations: 64,
        };
        let parsed = parse_json(&event_to_json(&event)).expect("event must parse");
        prop_assert_eq!(parsed.get("best").and_then(Json::as_f64), Some(best));
        prop_assert_eq!(parsed.get("mean").and_then(Json::as_f64), Some(mean));
        prop_assert_eq!(
            parsed.get("generation").and_then(Json::as_u64),
            Some(generation as u64)
        );
    }

    #[test]
    fn fault_detected_events_escape_site_names(site in text(), fault in 0u32..10_000) {
        let event = RunEvent::FaultDetected { fault, site: site.clone(), vector: 7 };
        let parsed = parse_json(&event_to_json(&event)).expect("event must parse");
        prop_assert_eq!(parsed.get("site").and_then(Json::as_str), Some(site.as_str()));
        prop_assert_eq!(parsed.get("fault").and_then(Json::as_u64), Some(u64::from(fault)));
    }
}
