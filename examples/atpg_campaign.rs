//! A full ATPG campaign: run GATEST, the HITEC-like deterministic baseline,
//! the CRIS-like GA, and random patterns over a suite of circuits, printing
//! a Table 2-style comparison and writing the GA test sets to disk.
//!
//! ```text
//! cargo run --release --example atpg_campaign [-- circuit ...]
//! ```
//!
//! Test sets are written to `target/test_sets/<circuit>.tests` (one vector
//! per line, `0`/`1` per primary input).

use std::error::Error;
use std::sync::Arc;

use gatest_baselines::cris::{CrisAtpg, CrisConfig};
use gatest_baselines::hitec::{HitecAtpg, HitecConfig};
use gatest_baselines::random::RandomAtpg;
use gatest_core::report::{format_duration, test_set_to_string};
use gatest_core::{FaultSample, GatestConfig, TestGenerator};
use gatest_netlist::benchmarks;

fn main() -> Result<(), Box<dyn Error>> {
    let mut circuits: Vec<String> = std::env::args().skip(1).collect();
    if circuits.is_empty() {
        circuits = vec!["s27".into(), "s298".into(), "s386".into()];
    }
    let out_dir = std::path::Path::new("target/test_sets");
    std::fs::create_dir_all(out_dir)?;

    println!(
        "{:<8} {:<8} {:>7} {:>7} {:>7} {:>9}",
        "circuit", "method", "faults", "det", "vec", "time"
    );
    for name in &circuits {
        let circuit = Arc::new(benchmarks::iscas89(name)?);

        // GATEST (fault sampling keeps the campaign quick; use
        // FaultSample::Full for maximum coverage).
        let mut config = GatestConfig::for_circuit(&circuit).with_seed(1);
        config.fault_sample = FaultSample::Count(100);
        let ga = TestGenerator::new(Arc::clone(&circuit), config).run();
        println!(
            "{:<8} {:<8} {:>7} {:>7} {:>7} {:>9}",
            name,
            "gatest",
            ga.total_faults,
            ga.detected,
            ga.vectors(),
            format_duration(ga.elapsed)
        );
        std::fs::write(
            out_dir.join(format!("{name}.tests")),
            test_set_to_string(&ga.test_set),
        )?;

        // HITEC-like deterministic ATPG.
        let hitec = HitecAtpg::new(Arc::clone(&circuit), HitecConfig::default()).run();
        println!(
            "{:<8} {:<8} {:>7} {:>7} {:>7} {:>9}",
            name,
            "hitec",
            hitec.total_faults,
            hitec.detected,
            hitec.vectors(),
            format_duration(hitec.elapsed)
        );

        // CRIS-like logic-simulation GA.
        let cris = CrisAtpg::new(Arc::clone(&circuit), CrisConfig::default()).run();
        println!(
            "{:<8} {:<8} {:>7} {:>7} {:>7} {:>9}",
            name,
            "cris",
            cris.total_faults,
            cris.detected,
            cris.vectors(),
            format_duration(cris.elapsed)
        );

        // Random patterns with the same vector budget as GATEST.
        let random = RandomAtpg::new(Arc::clone(&circuit), 1).run(ga.vectors());
        println!(
            "{:<8} {:<8} {:>7} {:>7} {:>7} {:>9}",
            name,
            "random",
            random.total_faults,
            random.detected,
            random.vectors(),
            format_duration(random.elapsed)
        );
        println!();
    }
    println!("GA test sets written to {}", out_dir.display());
    Ok(())
}
