//! Fault diagnosis with a fault dictionary: generate tests, build the
//! dictionary, "break" the circuit with a random fault, and locate it from
//! the failing tester observations alone.
//!
//! ```text
//! cargo run --release --example diagnosis [circuit] [seed]
//! ```

use std::error::Error;
use std::sync::Arc;

use gatest_core::{FaultSample, GatestConfig, TestGenerator};
use gatest_ga::Rng;
use gatest_netlist::benchmarks;
use gatest_sim::dictionary::FaultDictionary;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let circuit_name = args.next().unwrap_or_else(|| "s298".to_string());
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    let circuit = Arc::new(benchmarks::iscas89(&circuit_name)?);

    // 1. Generate a test set.
    let mut config = GatestConfig::for_circuit(&circuit).with_seed(seed);
    config.fault_sample = FaultSample::Count(100);
    let result = TestGenerator::new(Arc::clone(&circuit), config).run();
    println!(
        "test set: {} vectors, {}/{} faults detected",
        result.vectors(),
        result.detected,
        result.total_faults
    );

    // 2. Build the first-detection dictionary.
    let dict = FaultDictionary::build(Arc::clone(&circuit), &result.test_set);
    println!("dictionary entries: {}", dict.detected_count());

    // 3. Play defective device: pick random detected faults, present only
    //    their failing (vector, output) observations, and diagnose.
    let mut rng = Rng::new(seed);
    let candidates: Vec<_> = dict
        .fault_list()
        .iter()
        .filter(|(id, _)| dict.syndrome(*id).is_some())
        .collect();
    let mut exact = 0;
    let trials = 10.min(candidates.len());
    for t in 0..trials {
        let (id, fault) = candidates[rng.below(candidates.len())];
        let syn = dict.syndrome(id).expect("filtered to detected");
        let observed: Vec<(u32, u16)> = syn.outputs.iter().map(|&po| (syn.vector, po)).collect();
        let ranked = dict.diagnose(&observed);
        let top_score = ranked.first().map(|r| r.1).unwrap_or(0.0);
        let hit = ranked
            .iter()
            .take_while(|(_, s)| *s == top_score)
            .any(|(f, _)| *f == id);
        if hit {
            exact += 1;
        }
        println!(
            "trial {t}: injected {} -> {} candidate(s) at top score{}",
            fault.display(&circuit),
            ranked.iter().take_while(|(_, s)| *s == top_score).count(),
            if hit {
                " (correct fault among them)"
            } else {
                ""
            }
        );
    }
    println!("\n{exact}/{trials} diagnoses contained the injected fault at top rank");
    Ok(())
}
