//! Fault grading: measure the stuck-at coverage of an existing test set on
//! a circuit, with a per-vector coverage curve and a list of surviving
//! faults — the "fault simulator as a service" use of this library.
//!
//! ```text
//! cargo run --release --example fault_grading [circuit] [tests-file]
//! ```
//!
//! Without a tests file, a built-in demonstration set (zero-hold
//! initialization followed by random patterns) is graded. The tests file
//! format is one vector per line, `0`/`1`/`x` per primary input, as written
//! by the `atpg_campaign` example.

use std::error::Error;
use std::sync::Arc;

use gatest_core::report::test_set_from_string;
use gatest_ga::Rng;
use gatest_netlist::benchmarks;
use gatest_sim::{FaultSim, FaultStatus, Logic};

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let circuit_name = args.next().unwrap_or_else(|| "s298".to_string());
    let tests_path = args.next();

    let circuit = Arc::new(benchmarks::iscas89(&circuit_name)?);
    println!("{}", circuit.stats());

    let test_set: Vec<Vec<Logic>> = match &tests_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            test_set_from_string(&text).map_err(std::io::Error::other)?
        }
        None => {
            // Demonstration set: zero-hold initialization, then random.
            let depth = gatest_netlist::depth::sequential_depth(&circuit) as usize;
            let mut rng = Rng::new(7);
            let pis = circuit.num_inputs();
            let mut set: Vec<Vec<Logic>> = (0..depth + 2).map(|_| vec![Logic::Zero; pis]).collect();
            for _ in 0..256 {
                set.push((0..pis).map(|_| Logic::from_bool(rng.coin())).collect());
            }
            set
        }
    };

    let mut sim = FaultSim::new(Arc::clone(&circuit));
    let total = sim.fault_list().len();
    println!(
        "grading {} vectors against {} collapsed faults",
        test_set.len(),
        total
    );

    // Per-vector coverage curve (printed every ~10% of the set).
    let stride = (test_set.len() / 10).max(1);
    for (i, v) in test_set.iter().enumerate() {
        if v.len() != circuit.num_inputs() {
            return Err(format!(
                "vector {} has {} bits, circuit has {} inputs",
                i,
                v.len(),
                circuit.num_inputs()
            )
            .into());
        }
        sim.step(v);
        if (i + 1) % stride == 0 || i + 1 == test_set.len() {
            println!(
                "  after {:>5} vectors: {:>6} detected ({:.1}%)",
                i + 1,
                sim.detected_count(),
                100.0 * sim.detected_count() as f64 / total as f64
            );
        }
    }

    // Detection latency histogram: which vector finally caught each fault.
    let mut first_quarter = 0;
    let mut rest = 0;
    let quarter = (test_set.len() / 4).max(1) as u32;
    for (id, _) in sim.fault_list().iter() {
        if let FaultStatus::Detected { vector } = sim.status(id) {
            if vector < quarter {
                first_quarter += 1;
            } else {
                rest += 1;
            }
        }
    }
    println!(
        "detection latency: {first_quarter} faults in the first quarter of the set, {rest} later"
    );

    // The surviving faults, by name — the input to a second ATPG pass.
    let survivors: Vec<String> = sim
        .active_faults()
        .iter()
        .take(12)
        .map(|&id| sim.fault_list().get(id).display(&circuit).to_string())
        .collect();
    println!(
        "{} faults undetected{}{}",
        sim.remaining(),
        if survivors.is_empty() { "" } else { ", e.g. " },
        survivors.join(", ")
    );
    Ok(())
}
