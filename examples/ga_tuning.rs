//! GA parameter tuning on one circuit: sweep the selection and crossover
//! schemes (the paper's Table 3 axes) plus the mutation rate (Table 4) and
//! print the fault-coverage landscape — a miniature of the experiment
//! harness for interactive exploration.
//!
//! ```text
//! cargo run --release --example ga_tuning [circuit] [runs]
//! ```

use std::error::Error;
use std::sync::Arc;

use gatest_core::{FaultSample, GatestConfig, TestGenerator};
use gatest_ga::{CrossoverScheme, SelectionScheme};
use gatest_netlist::benchmarks;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let circuit_name = args.next().unwrap_or_else(|| "s298".to_string());
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let circuit = Arc::new(benchmarks::iscas89(&circuit_name)?);
    println!(
        "{} — mean faults detected over {runs} run(s)\n",
        circuit.stats()
    );

    let mean_detected = |tweak: &dyn Fn(&mut GatestConfig)| -> f64 {
        let mut sum = 0usize;
        for run in 0..runs {
            let mut config = GatestConfig::for_circuit(&circuit);
            config.fault_sample = FaultSample::Count(100);
            config.seed = 0x5eed + run as u64;
            tweak(&mut config);
            sum += TestGenerator::new(Arc::clone(&circuit), config)
                .run()
                .detected;
        }
        sum as f64 / runs as f64
    };

    // Table 3 landscape: selection × crossover.
    print!("{:<18}", "");
    for crossover in CrossoverScheme::ALL {
        print!("{:>8}", crossover.label());
    }
    println!();
    let mut best = (f64::MIN, "", "");
    for selection in SelectionScheme::ALL {
        print!("{:<18}", selection.label());
        for crossover in CrossoverScheme::ALL {
            let detected = mean_detected(&|c: &mut GatestConfig| {
                c.selection = selection;
                c.crossover = crossover;
            });
            if detected > best.0 {
                best = (detected, selection.label(), crossover.label());
            }
            print!("{detected:>8.1}");
        }
        println!();
    }
    println!(
        "\nbest combination: {} + {} ({:.1} faults)",
        best.1, best.2, best.0
    );
    println!("(the paper found tournament-without-replacement + uniform best overall)\n");

    // Table 4 slice: sequence-generation mutation rate.
    print!("{:<18}", "mutation rate");
    for denom in [16, 32, 64, 128, 256] {
        print!("{:>8}", format!("1/{denom}"));
    }
    println!();
    print!("{:<18}", "detected");
    for denom in [16u32, 32, 64, 128, 256] {
        let detected = mean_detected(&|c: &mut GatestConfig| {
            c.sequence_mutation = 1.0 / denom as f64;
        });
        print!("{detected:>8.1}");
    }
    println!();
    println!("(the paper found mutation a much weaker knob than selection/crossover)");
    Ok(())
}
