//! Quickstart: generate tests for one benchmark circuit and print a report.
//!
//! ```text
//! cargo run --release --example quickstart [circuit] [seed]
//! ```

use std::error::Error;
use std::sync::Arc;

use gatest_core::telemetry::ProgressReporter;
use gatest_core::{report, GatestConfig, TestGenerator};
use gatest_netlist::benchmarks;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let circuit_name = args.next().unwrap_or_else(|| "s298".to_string());
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    // Load a bundled benchmark (or parse your own with
    // `gatest_netlist::parse_bench`).
    let circuit = Arc::new(benchmarks::iscas89(&circuit_name)?);
    println!("{}", circuit.stats());
    println!(
        "sequential depth: {}",
        gatest_netlist::depth::sequential_depth(&circuit)
    );

    // The paper's configuration for this circuit (Table 1 GA parameters,
    // progress limits, sequence-length schedule).
    let config = GatestConfig::for_circuit(&circuit).with_seed(seed);
    // Attach an observer for live progress on stderr; `--trace-out` in the
    // CLI (a `JsonlTraceWriter` here) would record the same event stream.
    let mut generator = TestGenerator::new(Arc::clone(&circuit), config)
        .with_observer(Arc::new(ProgressReporter::new()));
    let result = generator.run();

    println!();
    println!("{}", report::table_header());
    println!("{}", report::table_row(&result));
    println!();
    println!("{}", report::telemetry_table(&result));
    println!();
    println!(
        "phase breakdown: init={} vectors, detect={}, stalled={}, sequences={}",
        result.phase_vectors[0],
        result.phase_vectors[1],
        result.phase_vectors[2],
        result.phase_vectors[3],
    );
    println!(
        "{} GA fitness evaluations, {} sequence attempts",
        result.ga_evaluations, result.sequence_attempts
    );

    // The test set replays exactly: grade it with a fresh fault simulator.
    let mut sim = gatest_sim::FaultSim::new(circuit);
    for v in &result.test_set {
        sim.step(v);
    }
    assert_eq!(sim.detected_count(), result.detected);
    println!(
        "replayed test set confirms {}/{} faults detected ({:.1}% coverage)",
        sim.detected_count(),
        result.total_faults,
        100.0 * result.fault_coverage()
    );
    Ok(())
}
