//! Design-for-test demonstration: what full scan buys you.
//!
//! Runs the GA test generator on a sequential benchmark, then applies the
//! full-scan transformation (every flip-flop becomes a pseudo primary
//! input/output) and runs *combinational* deterministic ATPG on the result.
//! The comparison quantifies exactly the problem GATEST attacks: the cost
//! of justifying and observing state through time frames.
//!
//! ```text
//! cargo run --release --example scan_dft [circuit]
//! ```

use std::error::Error;
use std::sync::Arc;

use gatest_baselines::hitec::{HitecAtpg, HitecConfig};
use gatest_core::report::format_duration;
use gatest_core::{FaultSample, GatestConfig, TestGenerator};
use gatest_netlist::scan::full_scan;
use gatest_netlist::{benchmarks, depth::sequential_depth};

fn main() -> Result<(), Box<dyn Error>> {
    let circuit_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "s298".to_string());

    let seq = Arc::new(benchmarks::iscas89(&circuit_name)?);
    println!("sequential: {}", seq.stats());
    println!("sequential depth: {}", sequential_depth(&seq));

    // 1. GA-based sequential ATPG on the original circuit.
    let mut config = GatestConfig::for_circuit(&seq).with_seed(1);
    config.fault_sample = FaultSample::Count(100);
    let ga = TestGenerator::new(Arc::clone(&seq), config).run();
    println!(
        "\nGA on sequential circuit: {}/{} faults ({:.1}%), {} vectors, {}",
        ga.detected,
        ga.total_faults,
        100.0 * ga.fault_coverage(),
        ga.vectors(),
        format_duration(ga.elapsed)
    );

    // 2. Full scan + combinational deterministic ATPG (one time frame: the
    //    state is directly controllable and observable).
    let scanned = full_scan(&seq);
    let comb = Arc::new(scanned.circuit().clone());
    println!(
        "\nscanned:    {} (sequential depth {})",
        comb.stats(),
        sequential_depth(&comb)
    );
    let hitec_config = HitecConfig {
        max_frames: 1,
        ..HitecConfig::default()
    };
    let scan_atpg = HitecAtpg::new(Arc::clone(&comb), hitec_config).run();
    println!(
        "deterministic ATPG on scan circuit: {}/{} faults ({:.1}%), {} vectors, {} \
         ({} untestable, {} aborted)",
        scan_atpg.detected,
        scan_atpg.total_faults,
        100.0 * scan_atpg.fault_coverage(),
        scan_atpg.vectors(),
        format_duration(scan_atpg.elapsed),
        scan_atpg.untestable,
        scan_atpg.aborted,
    );

    println!(
        "\nthe gap between the two coverages is the price of state justification —\n\
         what GATEST's phase machine and sequence evolution work to recover\n\
         without the area/pin overhead of scan."
    );
    Ok(())
}
