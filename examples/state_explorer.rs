//! Exhaustive state-space analysis of a small sequential circuit: reachable
//! states, synchronizing sequence, testability estimates — and a Graphviz
//! dump of the netlist for visual inspection.
//!
//! ```text
//! cargo run --release --example state_explorer [circuit] [--dot out.dot]
//! ```

use std::error::Error;
use std::sync::Arc;

use gatest_netlist::benchmarks;
use gatest_sim::state_space::{synchronizing_sequence, StateSpace};
use gatest_sim::{FaultSim, GoodSim, Logic};

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1).peekable();
    let circuit_name = match args.peek() {
        Some(a) if !a.starts_with("--") => args.next().unwrap(),
        _ => "s27".to_string(),
    };
    let mut dot_path = None;
    while let Some(arg) = args.next() {
        if arg == "--dot" {
            dot_path = args.next();
        }
    }

    let circuit = Arc::new(benchmarks::iscas89(&circuit_name)?);
    println!("{}", circuit.stats());
    println!(
        "sequential depth: {}",
        gatest_netlist::depth::sequential_depth(&circuit)
    );

    if let Some(path) = dot_path {
        std::fs::write(&path, gatest_netlist::dot::to_dot(&circuit))?;
        println!("wrote Graphviz netlist to {path}");
    }

    // Exhaustive reachability (small circuits only).
    match StateSpace::explore(&circuit) {
        Ok(space) => {
            println!(
                "\nreachable states from power-up: {} ternary, {} fully binary \
                 ({:.1}% of the 2^{} binary space)",
                space.reachable_states(),
                space.reachable_binary_states(),
                100.0 * space.binary_coverage(),
                circuit.num_dffs()
            );
        }
        Err(e) => println!("\nstate space: {e}"),
    }

    // Synchronizing sequence (what GATEST's phase 1 searches for).
    match synchronizing_sequence(&circuit, 16) {
        Ok(Some(seq)) => {
            println!("synchronizing sequence of {} frame(s) found:", seq.len());
            for (i, v) in seq.iter().enumerate() {
                let bits: String = v.iter().map(|x| x.to_string()).collect();
                println!("  frame {i}: {bits}");
            }
            // Verify and continue into a quick fault-coverage probe.
            let mut good = GoodSim::new(Arc::clone(&circuit));
            for v in &seq {
                good.apply(v);
            }
            assert_eq!(good.known_next_state(), circuit.num_dffs());
            println!("verified: machine fully initialized after the sequence");

            let mut sim = FaultSim::new(Arc::clone(&circuit));
            for v in &seq {
                sim.step(v);
            }
            let mut rng = gatest_ga::Rng::new(7);
            for _ in 0..256 {
                let v: Vec<Logic> = (0..circuit.num_inputs())
                    .map(|_| Logic::from_bool(rng.coin()))
                    .collect();
                sim.step(&v);
            }
            println!(
                "synchronize-then-random coverage: {}/{} faults",
                sim.detected_count(),
                sim.fault_list().len()
            );
        }
        Ok(None) => println!("no synchronizing sequence within 16 frames (3-valued analysis)"),
        Err(e) => println!("synchronizing sequence: {e}"),
    }
    Ok(())
}
