//! Beyond stuck-at: GA-based test generation for transition (delay) faults
//! — the paper's conclusion ("other fault models can easily be accommodated
//! with appropriate fitness functions") made runnable.
//!
//! ```text
//! cargo run --release --example transition_atpg [circuit]
//! ```

use std::error::Error;
use std::sync::Arc;

use gatest_core::report::format_duration;
use gatest_core::transition::TransitionTestGenerator;
use gatest_core::{FaultSample, GatestConfig, TestGenerator};
use gatest_netlist::benchmarks;
use gatest_sim::transition::TransitionFaultSim;

fn main() -> Result<(), Box<dyn Error>> {
    let circuit_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "s298".to_string());
    let circuit = Arc::new(benchmarks::iscas89(&circuit_name)?);
    println!("{}", circuit.stats());

    // Stuck-at run for reference.
    let mut config = GatestConfig::for_circuit(&circuit).with_seed(1);
    config.fault_sample = FaultSample::Count(100);
    let stuck = TestGenerator::new(Arc::clone(&circuit), config.clone()).run();
    println!(
        "\nstuck-at:   {}/{} ({:.1}%), {} vectors, {}",
        stuck.detected,
        stuck.total_faults,
        100.0 * stuck.fault_coverage(),
        stuck.vectors(),
        format_duration(stuck.elapsed)
    );

    // Transition-fault run: same GA machinery, different fitness oracle.
    let trans = TransitionTestGenerator::new(Arc::clone(&circuit), config).run();
    println!(
        "transition: {}/{} ({:.1}%), {} vectors, {}",
        trans.detected,
        trans.total_faults,
        100.0 * trans.fault_coverage(),
        trans.vectors(),
        format_duration(trans.elapsed)
    );

    // How well do the stuck-at tests do on transition faults? (The classic
    // observation: stuck-at sets catch many but not all transitions.)
    let mut cross = TransitionFaultSim::new(circuit);
    for v in &stuck.test_set {
        cross.step(v);
    }
    println!(
        "stuck-at test set graded on transition faults: {}/{} ({:.1}%)",
        cross.detected_count(),
        cross.total_faults(),
        100.0 * cross.detected_count() as f64 / cross.total_faults().max(1) as f64
    );
    Ok(())
}
