#!/bin/sh
# Measure candidate-evaluation throughput (the evaluation engine's headline
# number), fault-simulation step throughput (the fault-group pool's
# headline number), and the synthetic scaling sweep, recording them in
# BENCH_eval.json, BENCH_sim.json, and BENCH_scale.json so the performance
# trajectory is tracked across PRs. Pass --smoke for a fast
# CI-sized run. Validation and the regression gate live in check_bench.sh —
# this script only refreshes the committed baselines.
set -eu

cd "$(dirname "$0")/.."

mode=""
if [ "${1:-}" = "--smoke" ]; then
    mode="--smoke"
elif [ "$#" -gt 0 ]; then
    echo "usage: $0 [--smoke]" >&2
    exit 2
fi

# Provenance is caller-supplied (the binaries never read the clock or the
# repo themselves); default it here so refreshed baselines record where and
# when they were measured.
GATEST_GIT_REV="${GATEST_GIT_REV:-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)}"
GATEST_BENCH_TIMESTAMP="${GATEST_BENCH_TIMESTAMP:-$(date -u +%Y-%m-%dT%H:%M:%SZ)}"
export GATEST_GIT_REV GATEST_BENCH_TIMESTAMP

cargo build --release -p gatest-bench --bin bench_eval --bin bench_sim --bin bench_scale
target/release/bench_eval $mode > BENCH_eval.json
echo "wrote BENCH_eval.json:" >&2
cat BENCH_eval.json
target/release/bench_sim $mode > BENCH_sim.json
echo "wrote BENCH_sim.json:" >&2
cat BENCH_sim.json
target/release/bench_scale $mode > BENCH_scale.json
echo "wrote BENCH_scale.json:" >&2
cat BENCH_scale.json
scripts/check_bench.sh --validate >&2
