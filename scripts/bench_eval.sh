#!/bin/sh
# Measure candidate-evaluation throughput (the evaluation engine's headline
# number) and record it in BENCH_eval.json so the performance trajectory is
# tracked across PRs. Pass --smoke for a fast CI-sized run.
set -eu

cd "$(dirname "$0")/.."

mode=""
if [ "${1:-}" = "--smoke" ]; then
    mode="--smoke"
elif [ "$#" -gt 0 ]; then
    echo "usage: $0 [--smoke]" >&2
    exit 2
fi

cargo build --release -p gatest-bench --bin bench_eval
target/release/bench_eval $mode > BENCH_eval.json
echo "wrote BENCH_eval.json:" >&2
cat BENCH_eval.json
