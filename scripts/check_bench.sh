#!/bin/sh
# The single bench gate used by CI and local runs.
#
#   check_bench.sh --validate   schema-validate the committed BENCH_eval.json,
#                               BENCH_sim.json, and BENCH_scale.json baselines
#   check_bench.sh --smoke      run both microbenchmarks in smoke mode,
#                               schema-validate their output, and fail when
#                               the serial (workers=1 / sim_threads=1)
#                               throughput regresses more than
#                               BENCH_TOLERANCE (default 0.15 = 15%) below
#                               the committed baseline
#
# Both modes gate the instrumentation overhead recorded in the committed
# full-mode BENCH_eval.json at BENCH_OVERHEAD_TOLERANCE (default 0.05 =
# 5%). Typical readings are 0-1%; the ceiling sits above that because
# per-process memory-layout jitter (allocator/ASLR placement) biases any
# single bench_eval run by a couple percent either way, and a real
# regression (say, making span collection eager on the sim hot path)
# costs an order of magnitude more than the headroom. The fresh smoke
# run's overhead is re-measured too, but against the looser
# BENCH_SMOKE_OVERHEAD_TOLERANCE (default 0.10 = 10%): its sub-second
# passes add timer noise on top.
#
# The regression comparison is skipped with a warning when the host CPU
# count differs from the one the committed baseline was recorded on — the
# numbers are not comparable across machine shapes.
set -eu

cd "$(dirname "$0")/.."

TOLERANCE="${BENCH_TOLERANCE:-0.15}"
OVERHEAD_TOLERANCE="${BENCH_OVERHEAD_TOLERANCE:-0.05}"
SMOKE_OVERHEAD_TOLERANCE="${BENCH_SMOKE_OVERHEAD_TOLERANCE:-0.10}"

usage() {
    echo "usage: $0 --validate | --smoke" >&2
    exit 2
}

[ "$#" -eq 1 ] || usage
mode="$1"
case "$mode" in
    --validate|--smoke) ;;
    *) usage ;;
esac

cargo build --release -p gatest-bench --bin bench_eval --bin bench_sim --bin bench_scale

validate_committed() {
    target/release/bench_eval --validate BENCH_eval.json
    target/release/bench_sim --validate BENCH_sim.json
    target/release/bench_scale --validate BENCH_scale.json
}

# json_num FILE KEY -> first numeric value of "KEY" in FILE
json_num() {
    sed -n "s/.*\"$2\": *\\([0-9][0-9.]*\\).*/\\1/p" "$1" | head -n 1
}

# rate FILE ROWKEY ROWVAL RATEKEY -> RATEKEY from the row where ROWKEY=ROWVAL
rate() {
    grep "\"$2\": *$3[,}]" "$1" | sed -n "s/.*\"$4\": *\\([0-9][0-9.]*\\).*/\\1/p" | head -n 1
}

# wrate FILE CIRCUIT BACKEND KEY -> KEY from the width row for CIRCUIT+BACKEND
wrate() {
    grep "\"circuit\": *\"$2\"" "$1" | grep "\"backend\": *\"$3\"" |
        sed -n "s/.*\"$4\": *\\([0-9][0-9.]*\\).*/\\1/p" | head -n 1
}

# compare LABEL BASELINE CURRENT -> fails when CURRENT < (1-TOLERANCE)*BASELINE
compare() {
    awk -v label="$1" -v base="$2" -v cur="$3" -v tol="$TOLERANCE" 'BEGIN {
        floor = base * (1 - tol)
        if (cur < floor) {
            printf "FAIL %s: %.0f/sec is %.1f%% below the committed %.0f/sec (floor %.0f at %.0f%% tolerance)\n",
                label, cur, 100 * (1 - cur / base), base, floor, 100 * tol
            exit 1
        }
        printf "ok   %s: %.0f/sec vs committed %.0f/sec (floor %.0f)\n", label, cur, base, floor
    }'
}

# overhead_gate LABEL FILE TOLERANCE -> fails when overhead_frac > TOLERANCE
overhead_gate() {
    awk -v label="$1" -v frac="$(json_num "$2" overhead_frac)" -v tol="$3" 'BEGIN {
        if (frac > tol) {
            printf "FAIL %s instrumentation overhead: %.2f%% exceeds the %.2f%% ceiling\n",
                label, 100 * frac, 100 * tol
            exit 1
        }
        printf "ok   %s instrumentation overhead: %.2f%% of serial eval throughput (ceiling %.2f%%)\n",
            label, 100 * frac, 100 * tol
    }'
}

if [ "$mode" = "--validate" ]; then
    validate_committed
    overhead_gate committed BENCH_eval.json "$OVERHEAD_TOLERANCE"
    exit 0
fi

# --smoke: fresh runs, schema checks, then the regression gate.
validate_committed
overhead_gate committed BENCH_eval.json "$OVERHEAD_TOLERANCE"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

target/release/bench_eval --smoke > "$tmpdir/eval.json"
target/release/bench_sim --smoke > "$tmpdir/sim.json"
target/release/bench_scale --smoke > "$tmpdir/scale.json"
target/release/bench_eval --validate "$tmpdir/eval.json"
target/release/bench_sim --validate "$tmpdir/sim.json"
target/release/bench_scale --validate "$tmpdir/scale.json"

# The memoization layer must earn its keep on the duplicate-heavy cache
# workload. The speedup is a within-run ratio, so unlike the absolute
# throughput comparison below it is meaningful on any machine shape.
awk -v cur="$(json_num "$tmpdir/eval.json" speedup)" -v floor=1.3 'BEGIN {
    if (cur < floor) {
        printf "FAIL eval cache: %.2fx speedup is below the %.1fx floor\n", cur, floor
        exit 1
    }
    printf "ok   eval cache: %.2fx speedup on the duplicate-heavy workload (floor %.1fx)\n", cur, floor
}'

# Instrumentation must stay observationally cheap on this machine too.
# Like the cache speedup this is a within-run ratio, valid on any shape,
# but the sub-second smoke passes are noisy, hence the looser ceiling.
overhead_gate smoke "$tmpdir/eval.json" "$SMOKE_OVERHEAD_TOLERANCE"

# The wide packed backend must keep its advantage over scalar64. The gate
# compares within-run speedups, not absolute rates: step rates accelerate
# over a run as detected faults drop out, so a short smoke stream's rate is
# not comparable with the committed full-length baseline's — but the
# wide/scalar ratio measured on the same stream is, on any machine shape.
# (Absolute wide256 throughput is covered transitively: scalar64 serial
# throughput is gated below, and this ratio ties wide256 to it.)
for circuit in s298 s1423; do
    awk -v label="sim width $circuit wide256" \
        -v base="$(wrate BENCH_sim.json "$circuit" wide256 speedup_vs_scalar64)" \
        -v cur="$(wrate "$tmpdir/sim.json" "$circuit" wide256 speedup_vs_scalar64)" \
        -v tol="$TOLERANCE" 'BEGIN {
        floor = base * (1 - tol)
        if (cur < floor) {
            printf "FAIL %s: %.2fx speedup vs scalar64 is below the committed %.2fx (floor %.2fx at %.0f%% tolerance)\n",
                label, cur, base, floor, 100 * tol
            exit 1
        }
        printf "ok   %s: %.2fx speedup vs scalar64 (committed %.2fx, floor %.2fx)\n",
            label, cur, base, floor
    }'
done

# srate FILE CIRCUIT BACKEND THREADS -> vectors_per_sec from BENCH_scale's
# row for that size, backend, and thread count.
srate() {
    awk -v circuit="$2" -v backend="$3" -v threads="$4" '
        /"circuit":/ { inside = index($0, "\"" circuit "\"") > 0 }
        inside && index($0, "\"backend\": \"" backend "\"") > 0 \
               && index($0, "\"sim_threads\": " threads ",") > 0 {
            if (match($0, /"vectors_per_sec": [0-9.]+/)) {
                print substr($0, RSTART + 19, RLENGTH - 19)
                exit
            }
        }' "$1"
}

host_cpus="$(json_num "$tmpdir/eval.json" host_cpus)"
base_cpus="$(json_num BENCH_eval.json host_cpus)"
if [ "$host_cpus" != "$base_cpus" ]; then
    echo "warning: host_cpus $host_cpus differs from the committed baseline's $base_cpus; skipping the regression comparison" >&2
    exit 0
fi

compare "eval workers=1" \
    "$(rate BENCH_eval.json workers 1 evals_per_sec)" \
    "$(rate "$tmpdir/eval.json" workers 1 evals_per_sec)"
compare "sim sim_threads=1" \
    "$(rate BENCH_sim.json sim_threads 1 vectors_per_sec)" \
    "$(rate "$tmpdir/sim.json" sim_threads 1 vectors_per_sec)"
# The scaling sweep's regression gate runs on the largest size the smoke
# run covers (its per-size stream and warmup match the committed full-mode
# baseline's, so the absolute rates are comparable on the same shape).
compare "scale 10k scalar64" \
    "$(srate BENCH_scale.json scale_10000 scalar64 1)" \
    "$(srate "$tmpdir/scale.json" scale_10000 scalar64 1)"
