#!/bin/sh
# The single bench gate used by CI and local runs.
#
#   check_bench.sh --validate   schema-validate the committed BENCH_eval.json
#                               and BENCH_sim.json baselines
#   check_bench.sh --smoke      run both microbenchmarks in smoke mode,
#                               schema-validate their output, and fail when
#                               the serial (workers=1 / sim_threads=1)
#                               throughput regresses more than
#                               BENCH_TOLERANCE (default 0.15 = 15%) below
#                               the committed baseline
#
# The regression comparison is skipped with a warning when the host CPU
# count differs from the one the committed baseline was recorded on — the
# numbers are not comparable across machine shapes.
set -eu

cd "$(dirname "$0")/.."

TOLERANCE="${BENCH_TOLERANCE:-0.15}"

usage() {
    echo "usage: $0 --validate | --smoke" >&2
    exit 2
}

[ "$#" -eq 1 ] || usage
mode="$1"
case "$mode" in
    --validate|--smoke) ;;
    *) usage ;;
esac

cargo build --release -p gatest-bench --bin bench_eval --bin bench_sim

validate_committed() {
    target/release/bench_eval --validate BENCH_eval.json
    target/release/bench_sim --validate BENCH_sim.json
}

# json_num FILE KEY -> first numeric value of "KEY" in FILE
json_num() {
    sed -n "s/.*\"$2\": *\\([0-9][0-9.]*\\).*/\\1/p" "$1" | head -n 1
}

# rate FILE ROWKEY ROWVAL RATEKEY -> RATEKEY from the row where ROWKEY=ROWVAL
rate() {
    grep "\"$2\": *$3[,}]" "$1" | sed -n "s/.*\"$4\": *\\([0-9][0-9.]*\\).*/\\1/p" | head -n 1
}

# compare LABEL BASELINE CURRENT -> fails when CURRENT < (1-TOLERANCE)*BASELINE
compare() {
    awk -v label="$1" -v base="$2" -v cur="$3" -v tol="$TOLERANCE" 'BEGIN {
        floor = base * (1 - tol)
        if (cur < floor) {
            printf "FAIL %s: %.0f/sec is %.1f%% below the committed %.0f/sec (floor %.0f at %.0f%% tolerance)\n",
                label, cur, 100 * (1 - cur / base), base, floor, 100 * tol
            exit 1
        }
        printf "ok   %s: %.0f/sec vs committed %.0f/sec (floor %.0f)\n", label, cur, base, floor
    }'
}

if [ "$mode" = "--validate" ]; then
    validate_committed
    exit 0
fi

# --smoke: fresh runs, schema checks, then the regression gate.
validate_committed

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

target/release/bench_eval --smoke > "$tmpdir/eval.json"
target/release/bench_sim --smoke > "$tmpdir/sim.json"
target/release/bench_eval --validate "$tmpdir/eval.json"
target/release/bench_sim --validate "$tmpdir/sim.json"

# The memoization layer must earn its keep on the duplicate-heavy cache
# workload. The speedup is a within-run ratio, so unlike the absolute
# throughput comparison below it is meaningful on any machine shape.
awk -v cur="$(json_num "$tmpdir/eval.json" speedup)" -v floor=1.3 'BEGIN {
    if (cur < floor) {
        printf "FAIL eval cache: %.2fx speedup is below the %.1fx floor\n", cur, floor
        exit 1
    }
    printf "ok   eval cache: %.2fx speedup on the duplicate-heavy workload (floor %.1fx)\n", cur, floor
}'

host_cpus="$(json_num "$tmpdir/eval.json" host_cpus)"
base_cpus="$(json_num BENCH_eval.json host_cpus)"
if [ "$host_cpus" != "$base_cpus" ]; then
    echo "warning: host_cpus $host_cpus differs from the committed baseline's $base_cpus; skipping the regression comparison" >&2
    exit 0
fi

compare "eval workers=1" \
    "$(rate BENCH_eval.json workers 1 evals_per_sec)" \
    "$(rate "$tmpdir/eval.json" workers 1 evals_per_sec)"
compare "sim sim_threads=1" \
    "$(rate BENCH_sim.json sim_threads 1 vectors_per_sec)" \
    "$(rate "$tmpdir/sim.json" sim_threads 1 vectors_per_sec)"
