#!/usr/bin/env python3
"""Splice experiment-harness outputs into EXPERIMENTS.md.

Usage: fill_experiments.py MAIN STUDY LADDER BIG
where MAIN/STUDY/LADDER/BIG are text files captured from the
`experiments` harness (and `big_run`). Each placeholder comment in
EXPERIMENTS.md (e.g. `<!-- TABLE2 -->`) is replaced by the corresponding
section of the captured output, wrapped in a code fence.
"""

import re
import sys


def sections(text):
    """Split harness output into titled blocks."""
    out = {}
    current = None
    buf = []
    for line in text.splitlines():
        if line.startswith(("Table ", "Figure ", "GA vs CRIS", "Simulation-based")):
            if current:
                out[current] = "\n".join(buf).rstrip()
            current = line.split(":")[0].strip()
            buf = [line]
        elif current:
            buf.append(line)
    if current:
        out[current] = "\n".join(buf).rstrip()
    return out


def main():
    main_txt = open(sys.argv[1]).read()
    study_txt = open(sys.argv[2]).read()
    ladder_txt = open(sys.argv[3]).read()
    big_txt = open(sys.argv[4]).read() if len(sys.argv) > 4 else ""

    blocks = {}
    blocks.update(sections(main_txt))
    blocks.update(sections(study_txt))
    blocks.update(sections(ladder_txt))

    mapping = {
        "TABLE2": "Table 2",
        "TABLE3": "Table 3",
        "TABLE4": "Table 4",
        "TABLE5": "Table 5",
        "TABLE6": "Table 6",
        "TABLE7": "Table 7",
        "FIGURE1": "Figure 1",
        "FIGURE2": "Figure 2",
        "CRIS": "GA vs CRIS",
        "LADDER": "Simulation-based",
    }

    md = open("EXPERIMENTS.md").read()
    for tag, title in mapping.items():
        body = blocks.get(title)
        if body is None:
            print(f"warning: no harness section for {tag}", file=sys.stderr)
            continue
        md = md.replace(f"<!-- {tag} -->", f"```text\n{body}\n```")

    big = "\n".join(
        l for l in big_txt.splitlines() if l.strip() and not l.startswith("EXIT")
    )
    if big:
        md = md.replace("<!-- BIG -->", f"```text\n{big}\n```")

    open("EXPERIMENTS.md", "w").write(md)
    leftover = re.findall(r"<!-- [A-Z0-9]+ -->", md)
    print("filled; leftover placeholders:", leftover)


if __name__ == "__main__":
    main()
