#!/bin/sh
# Traced end-to-end smoke, used by CI and local runs.
#
# Runs s298 (seed 5, full fault sample) with a JSONL trace and the live
# metrics server attached, exercises /metrics and /healthz over HTTP while
# the run executes, then drives the trace analysis subcommands:
#
#   * `trace summarize` and `trace phases` must parse the fresh trace;
#   * `trace diff --no-timing` against the committed reference
#     (tests/data/s298_seed5_full.trace.jsonl) gates determinism — the
#     deterministic totals (detected, vectors, GA evaluations, gate
#     evaluations) must match the recorded baseline on any machine;
#   * a sed-injected coverage drop must make `trace diff` fail (the
#     negative test proving the gate can actually fire).
#
# TRACE_SMOKE_PORT overrides the metrics port (default 9184).
set -eu

cd "$(dirname "$0")/.."

PORT="${TRACE_SMOKE_PORT:-9184}"
REF=tests/data/s298_seed5_full.trace.jsonl

cargo build --release -p gatest-cli

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

target/release/gatest atpg s298 --seed 5 --sample 0 \
    --trace-out "$tmpdir/run.jsonl" --metrics-addr "127.0.0.1:$PORT" \
    --out "$tmpdir/tests.txt" -q &
run_pid=$!

# Sample the live endpoints while the run executes. The server lives inside
# the gatest process, so every sample here is by construction mid-run.
if command -v curl >/dev/null 2>&1; then
    metrics_ok=0
    health_ok=0
    while kill -0 "$run_pid" 2>/dev/null; do
        if [ "$metrics_ok" -eq 0 ] \
            && curl -sf "http://127.0.0.1:$PORT/metrics" > "$tmpdir/metrics.txt" 2>/dev/null; then
            metrics_ok=1
        fi
        if [ "$health_ok" -eq 0 ] \
            && curl -sf "http://127.0.0.1:$PORT/healthz" > "$tmpdir/healthz.json" 2>/dev/null; then
            health_ok=1
        fi
        [ "$metrics_ok" -eq 1 ] && [ "$health_ok" -eq 1 ] && break
        sleep 0.1
    done
    if [ "$metrics_ok" -ne 1 ] || [ "$health_ok" -ne 1 ]; then
        echo "FAIL: could not sample /metrics and /healthz during the run" >&2
        wait "$run_pid" || true
        exit 1
    fi
    grep -q "gatest_sim_gate_evals_total" "$tmpdir/metrics.txt"
    grep -q '"status":"ok"' "$tmpdir/healthz.json"
    echo "ok   live /metrics and /healthz sampled mid-run"
else
    echo "warning: curl not available; skipping the live endpoint checks" >&2
fi

wait "$run_pid"

target/release/gatest trace summarize "$tmpdir/run.jsonl"
target/release/gatest trace phases "$tmpdir/run.jsonl"

# Determinism gate: the fresh trace's deterministic totals must match the
# committed reference (wall-clock rows are machine-dependent, hence
# --no-timing).
target/release/gatest trace diff "$REF" "$tmpdir/run.jsonl" --no-timing
echo "ok   trace diff against the committed reference"

# Negative test: an injected coverage drop must fail the gate.
sed 's/"event":"run_finished","detected":\([0-9]*\)/"event":"run_finished","detected":1/' \
    "$tmpdir/run.jsonl" > "$tmpdir/regressed.jsonl"
if target/release/gatest trace diff "$REF" "$tmpdir/regressed.jsonl" --no-timing \
    > "$tmpdir/diff.out" 2>&1; then
    echo "FAIL: trace diff accepted an injected coverage regression" >&2
    cat "$tmpdir/diff.out" >&2
    exit 1
fi
grep -q REGRESSED "$tmpdir/diff.out"
echo "ok   injected regression rejected"
