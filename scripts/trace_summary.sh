#!/bin/sh
# Reduce a gatest JSONL trace (from `gatest atpg --trace-out FILE`) to
# per-phase totals. Pure POSIX awk so it works without building anything;
# `gatest trace summarize FILE` prints the same numbers with full JSON
# parsing.
set -eu

if [ "$#" -ne 1 ] || [ ! -f "$1" ]; then
    echo "usage: $0 <trace.jsonl>" >&2
    exit 2
fi

awk '
function field(name,   m) {
    # Extract "name":value from the current line (numbers and plain strings).
    if (match($0, "\"" name "\":\"[^\"]*\"")) {
        m = substr($0, RSTART, RLENGTH)
        sub("^\"" name "\":\"", "", m); sub("\"$", "", m)
        return m
    }
    if (match($0, "\"" name "\":[-0-9.eE+]+")) {
        m = substr($0, RSTART, RLENGTH)
        sub("^\"" name "\":", "", m)
        return m
    }
    return ""
}
/"event":"run_started"/ {
    printf "run: %s seed %s (%s faults)\n", field("circuit"), field("seed"), field("total_faults")
}
/"event":"phase_entered"/        { entered[field("phase")]++ }
/"event":"ga_generation"/        { p = field("phase"); gens[p]++; evals[p] += field("evaluations") }
/"event":"vector_committed"/     { p = field("phase"); vecs[p]++; det[p] += field("detected_new") }
/"event":"fault_detected"/       { faults++ }
/"event":"run_finished"/ {
    footer = sprintf("finished: %s/%s detected, %s vectors, %s GA evaluations, %ss",
                     field("detected"), field("total_faults"), field("vectors"),
                     field("ga_evaluations"), field("elapsed_secs"))
}
/"event":/ { events++ }
END {
    if (events == 0) { print "trace is empty" > "/dev/stderr"; exit 1 }
    printf "%-22s %7s %6s %8s %8s %9s\n", "phase", "entered", "gens", "evals", "vectors", "detected"
    split("1 initialization|2 vector generation|3 stalled (activity)|4 sequences", names, "|")
    for (p = 1; p <= 4; p++)
        printf "%-22s %7d %6d %8d %8d %9d\n", names[p], entered[p], gens[p], evals[p], vecs[p], det[p]
    printf "%d events (%d fault detections)\n", events, faults
    if (footer != "") print footer
}
' "$1"
