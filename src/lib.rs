//! Umbrella crate for the GATEST reproduction: re-exports every workspace
//! crate and hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`).
//!
//! Start with [`core::TestGenerator`] (the paper's contribution) and
//! [`netlist::benchmarks`] (the bundled circuit suite):
//!
//! ```
//! use std::sync::Arc;
//! use gatest_repro::core::{GatestConfig, TestGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = Arc::new(gatest_repro::netlist::benchmarks::iscas89("s27")?);
//! let config = GatestConfig::for_circuit(&circuit).with_seed(1);
//! let result = TestGenerator::new(circuit, config).run();
//! assert!(result.fault_coverage() > 0.8);
//! # Ok(())
//! # }
//! ```

pub use gatest_baselines as baselines;
pub use gatest_core as core;
pub use gatest_ga as ga;
pub use gatest_netlist as netlist;
pub use gatest_sim as sim;
