//! Cross-baseline integration tests: the relative ordering the paper
//! reports must hold on the bundled suite.

use std::sync::Arc;

use gatest_baselines::cris::{CrisAtpg, CrisConfig};
use gatest_baselines::hitec::{HitecAtpg, HitecConfig};
use gatest_baselines::random::{BestOfRandomAtpg, RandomAtpg};
use gatest_core::{FaultSample, GatestConfig, TestGenerator};
use gatest_netlist::benchmarks;
use gatest_sim::FaultSim;

fn gatest_run(name: &str, seed: u64) -> gatest_core::TestGenResult {
    let circuit = Arc::new(benchmarks::iscas89(name).expect("bundled circuit"));
    let mut config = GatestConfig::for_circuit(&circuit).with_seed(seed);
    config.fault_sample = FaultSample::Count(100);
    TestGenerator::new(circuit, config).run()
}

#[test]
fn hitec_tests_verify_against_independent_fault_simulation() {
    let circuit = Arc::new(benchmarks::iscas89("s386").expect("bundled circuit"));
    let result = HitecAtpg::new(Arc::clone(&circuit), HitecConfig::default()).run();
    let mut sim = FaultSim::new(circuit);
    for v in &result.test_set {
        sim.step(v);
    }
    assert_eq!(sim.detected_count(), result.detected);
    assert!(result.fault_coverage() > 0.5, "{}", result.fault_coverage());
}

#[test]
fn gatest_and_hitec_land_close_on_s386() {
    // Table 2 shape: comparable coverage between the GA and the
    // deterministic generator on mid-size circuits.
    let ga = gatest_run("s386", 3);
    let circuit = Arc::new(benchmarks::iscas89("s386").expect("bundled circuit"));
    let hitec = HitecAtpg::new(circuit, HitecConfig::default()).run();
    let gap = (ga.fault_coverage() - hitec.fault_coverage()).abs();
    assert!(
        gap < 0.15,
        "GA {:.2} vs HITEC {:.2}",
        ga.fault_coverage(),
        hitec.fault_coverage()
    );
}

#[test]
fn gatest_beats_cris_coverage() {
    // §V: GATEST's fault-simulation fitness beat CRIS's logic-simulation
    // fitness on 17 of 18 circuits.
    let ga = gatest_run("s298", 3);
    let circuit = Arc::new(benchmarks::iscas89("s298").expect("bundled circuit"));
    let cris = CrisAtpg::new(circuit, CrisConfig::default()).run();
    assert!(
        ga.detected >= cris.detected,
        "GA {} vs CRIS {}",
        ga.detected,
        cris.detected
    );
}

#[test]
fn gatest_test_sets_are_much_shorter_than_cris() {
    // §V: "Test set length was one-third that of CRIS".
    let ga = gatest_run("s386", 5);
    let circuit = Arc::new(benchmarks::iscas89("s386").expect("bundled circuit"));
    let cris = CrisAtpg::new(circuit, CrisConfig::default()).run();
    assert!(
        ga.vectors() * 2 < cris.vectors().max(1) * 3,
        "GA {} vectors vs CRIS {}",
        ga.vectors(),
        cris.vectors()
    );
}

#[test]
fn best_of_random_sits_between_random_and_gatest() {
    let circuit = Arc::new(benchmarks::iscas89("s344").expect("bundled circuit"));
    let budget = 150;
    let plain = RandomAtpg::new(Arc::clone(&circuit), 7).run(budget);
    let guided = BestOfRandomAtpg::new(Arc::clone(&circuit), 7, 8).run(budget, budget);
    assert!(
        guided.detected >= plain.detected,
        "guided {} vs plain {}",
        guided.detected,
        plain.detected
    );
}

#[test]
fn all_baselines_expose_consistent_accounting() {
    let circuit = Arc::new(benchmarks::iscas89("s27").expect("bundled circuit"));
    let hitec = HitecAtpg::new(Arc::clone(&circuit), HitecConfig::default()).run();
    assert!(hitec.detected + hitec.untestable + hitec.aborted <= hitec.total_faults);
    let cris = CrisAtpg::new(Arc::clone(&circuit), CrisConfig::default()).run();
    assert!(cris.detected <= cris.total_faults);
    let random = RandomAtpg::new(circuit, 1).run(64);
    assert!(random.detected <= random.total_faults);
    assert_eq!(hitec.total_faults, cris.total_faults);
    assert_eq!(cris.total_faults, random.total_faults);
}
