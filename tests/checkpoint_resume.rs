//! Checkpoint/resume determinism: interrupted-and-resumed runs must be
//! bit-identical to uninterrupted ones, and the on-disk format must
//! round-trip and reject corruption.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use gatest_core::report::result_to_json;
use gatest_core::{
    CheckpointError, FaultSample, GaSnapshot, GatestConfig, RunControls, RunSnapshot,
    SnapshotIndividual, SnapshotPos, StopCause, TestGenerator,
};
use gatest_sim::{FaultStatus, Logic, SimState};
use gatest_telemetry::CounterSnapshot;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gatest-ckpt-{tag}-{}-{:?}.bin",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Deterministic splitmix64 for building arbitrary-but-reproducible
/// snapshot contents from a single proptest-drawn seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn logic(&mut self) -> Logic {
        match self.below(3) {
            0 => Logic::Zero,
            1 => Logic::One,
            _ => Logic::X,
        }
    }

    fn logics(&mut self, n: usize) -> Vec<Logic> {
        (0..n).map(|_| self.logic()).collect()
    }
}

/// A structurally valid but otherwise arbitrary snapshot derived from one
/// seed: every enum variant and container shape gets exercised across cases.
fn arbitrary_snapshot(seed: u64) -> RunSnapshot {
    let mut mix = Mix(seed);
    let pis = 1 + mix.below(6) as usize;
    let ga = |mix: &mut Mix, bits: usize| {
        let ind = |mix: &mut Mix| SnapshotIndividual {
            bits: (0..bits).map(|_| mix.next() & 1 == 1).collect(),
            fitness: mix.next() as f64 / u64::MAX as f64 * 10.0,
        };
        let pop = 1 + mix.below(8) as usize;
        GaSnapshot {
            sample: (0..mix.below(10)).map(|_| mix.below(500) as u32).collect(),
            rng: [mix.next(), mix.next(), mix.next(), mix.next()],
            generation: mix.below(9),
            evaluations: mix.below(1000),
            population: (0..pop).map(|_| ind(mix)).collect(),
            best: ind(mix),
            best_history: (0..mix.below(5)).map(|_| mix.next() as f64).collect(),
            mean_history: (0..mix.below(5)).map(|_| mix.next() as f64).collect(),
            diversity_history: (0..mix.below(5)).map(|_| mix.next() as f64).collect(),
        }
    };
    let pos = match mix.below(3) {
        0 => SnapshotPos::Vectors {
            phase: 1 + mix.below(3) as u8,
            noncontributing: mix.below(20),
            best_known_ffs: mix.below(20),
            init_stall: mix.below(20),
            ga: (mix.next() & 1 == 1).then(|| ga(&mut mix, pis)),
        },
        1 => {
            let frames = 1 + mix.below(8) as usize;
            SnapshotPos::Sequences {
                len_idx: mix.below(3),
                failures: mix.below(4),
                ga: (mix.next() & 1 == 1).then(|| ga(&mut mix, frames * pis)),
            }
        }
        _ => SnapshotPos::Done,
    };
    let nfaults = mix.below(60) as usize;
    let nffs = mix.below(10) as usize;
    RunSnapshot {
        circuit: format!("c{}", mix.below(1000)),
        seed: mix.next(),
        fault_sample: match mix.below(3) {
            0 => FaultSample::Full,
            1 => FaultSample::Count(mix.below(200) as usize),
            _ => FaultSample::Fraction(mix.next() as f64 / u64::MAX as f64),
        },
        config_digest: mix.next(),
        total_faults: nfaults as u64,
        master_rng: [mix.next(), mix.next(), mix.next(), mix.next()],
        test_set: {
            let vectors = mix.below(12) as usize;
            (0..vectors).map(|_| mix.logics(pis)).collect()
        },
        phase_vectors: [mix.below(9), mix.below(9), mix.below(9), mix.below(9)],
        phase_trace: (0..mix.below(30)).map(|_| 1 + mix.below(4) as u8).collect(),
        ga_evaluations: mix.next(),
        sequence_attempts: mix.below(40),
        phase_time_ns: [mix.next(), mix.next(), mix.next(), mix.next()],
        ga_generations: mix.below(5000),
        elapsed_ns: mix.next(),
        eval_epoch: mix.below(10_000),
        pos,
        sim: SimState {
            good_values: mix.logics(20),
            good_next_state: mix.logics(nffs),
            status: (0..nfaults)
                .map(|_| {
                    if mix.next() & 1 == 1 {
                        FaultStatus::Detected {
                            vector: mix.below(1000) as u32,
                        }
                    } else {
                        FaultStatus::Undetected
                    }
                })
                .collect(),
            faulty_ff: (0..nfaults)
                .map(|_| {
                    (0..mix.below(3))
                        .map(|_| (mix.below(nffs.max(1) as u64) as u32, mix.logic()))
                        .collect()
                })
                .collect(),
            vectors_applied: mix.below(10_000) as u32,
        },
        counters: CounterSnapshot {
            step_calls: mix.next(),
            gate_evals: mix.next(),
            checkpoint_restores: mix.next(),
            cache_hits: mix.next(),
            cache_misses: mix.next(),
            dedup_skips: mix.next(),
            prefix_frames_avoided: mix.next(),
            wide_groups: mix.next(),
            lanes_per_group: mix.next(),
            ..CounterSnapshot::default()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode → encode is lossless and canonical: the decoded
    /// snapshot equals the original and re-encodes to identical bytes.
    #[test]
    fn snapshot_serialization_round_trips(seed in any::<u64>()) {
        let snap = arbitrary_snapshot(seed);
        let bytes = snap.encode();
        let back = RunSnapshot::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.encode(), bytes, "canonical re-encoding");
    }

    /// Any single corrupted byte in the payload fails the checksum (or a
    /// structural check) — it never silently decodes to a different state.
    #[test]
    fn corrupted_snapshots_never_decode(seed in any::<u64>(), flip in any::<u64>()) {
        let snap = arbitrary_snapshot(seed);
        let mut bytes = snap.encode();
        let idx = 12 + (flip as usize % (bytes.len() - 12));
        bytes[idx] ^= 1 << (flip % 8) as u8;
        match RunSnapshot::decode(&bytes) {
            Err(_) => {}
            Ok(other) => prop_assert_eq!(other, snap, "only a checksum-bit flip may decode"),
        }
    }
}

fn s27_generator(seed: u64) -> TestGenerator {
    let circuit = Arc::new(gatest_netlist::benchmarks::iscas89("s27").unwrap());
    let config = GatestConfig::for_circuit(&circuit).with_seed(seed);
    TestGenerator::new(circuit, config)
}

/// Everything deterministic about a result, as one comparable string.
fn fingerprint(result: &gatest_core::TestGenResult) -> String {
    result_to_json(result)
}

/// The tentpole guarantee, exhaustively: killing an s27 run after *every*
/// possible tick and resuming from the written checkpoint reproduces the
/// uninterrupted run bit-for-bit — test set, phase trace, evaluation
/// counts, and the deterministic simulator counters.
#[test]
fn s27_kill_at_every_tick_resumes_bit_identically() {
    let baseline = s27_generator(3).run();
    assert_eq!(baseline.stop, StopCause::Completed);
    let mut expected = fingerprint(&baseline);
    // The baseline completed, so its stop cause is part of the fingerprint;
    // resumed runs also complete, so the strings must match exactly.
    let ck = temp_path("s27-sweep");
    let mut killed_at = 0u64;
    for k in 1..10_000 {
        let controls = RunControls {
            checkpoint_path: Some(ck.clone()),
            max_ticks: Some(k),
            ..RunControls::default()
        };
        let leg = s27_generator(3).run_controlled(&controls);
        if leg.stop == StopCause::Completed {
            assert_eq!(fingerprint(&leg), expected, "uninterrupted under controls");
            break;
        }
        killed_at = k;
        let snap = RunSnapshot::load(&ck).unwrap_or_else(|e| panic!("load at tick {k}: {e}"));
        let resumed = s27_generator(3)
            .resume(&snap, &RunControls::default())
            .unwrap_or_else(|e| panic!("resume at tick {k}: {e}"));
        assert_eq!(resumed.stop, StopCause::Completed);
        let got = fingerprint(&resumed);
        if got != expected {
            // Pinpoint the first difference for the failure message.
            let at = got
                .bytes()
                .zip(expected.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or(got.len().min(expected.len()));
            panic!(
                "resume after tick {k} diverged at byte {at}:\n  got  …{}\n  want …{}",
                &got[at.saturating_sub(40)..(at + 40).min(got.len())],
                &expected[at.saturating_sub(40)..(at + 40).min(expected.len())]
            );
        }
        expected = got;
    }
    assert!(killed_at > 50, "sweep must cover a non-trivial run");
    let _ = std::fs::remove_file(&ck);
}

/// The same guarantee on s298 with fault sampling (which exercises the
/// master-RNG shuffle path), at a sample of interruption points including
/// deep in sequence generation.
#[test]
fn s298_sampled_kills_resume_bit_identically() {
    let circuit = Arc::new(gatest_netlist::benchmarks::iscas89("s298").unwrap());
    let make = || {
        let mut config = GatestConfig::for_circuit(&circuit).with_seed(21);
        config.fault_sample = FaultSample::Count(60);
        TestGenerator::new(Arc::clone(&circuit), config)
    };
    let baseline = make().run();
    let expected = fingerprint(&baseline);
    let ck = temp_path("s298-sample");
    for k in [1, 2, 3, 7, 19, 53, 131, 317, 711, 1553] {
        let controls = RunControls {
            checkpoint_path: Some(ck.clone()),
            max_ticks: Some(k),
            ..RunControls::default()
        };
        let leg = make().run_controlled(&controls);
        if leg.stop == StopCause::Completed {
            break;
        }
        let snap = RunSnapshot::load(&ck).unwrap();
        let resumed = make().resume(&snap, &RunControls::default()).unwrap();
        assert_eq!(fingerprint(&resumed), expected, "kill at tick {k}");
    }
    let _ = std::fs::remove_file(&ck);
}

/// Backend width is an execution detail, not run state: a checkpoint taken
/// under one width resumes under any other — same v3 format, no width
/// recorded, no adjacency persisted (the CSR is derived data rebuilt on
/// load) — and reproduces the uninterrupted run byte for byte.
#[test]
fn checkpoint_resumes_across_sim_widths_bit_identically() {
    use gatest_sim::SimBackend;
    let circuit = Arc::new(gatest_netlist::benchmarks::iscas89("s298").unwrap());
    let make = |backend: SimBackend| {
        let mut config = GatestConfig::for_circuit(&circuit)
            .with_seed(21)
            .with_sim_width(backend);
        config.fault_sample = FaultSample::Count(60);
        TestGenerator::new(Arc::clone(&circuit), config)
    };
    let expected = fingerprint(&make(SimBackend::Scalar64).run());
    let ck = temp_path("s298-xwidth");
    for (writer, resumer) in [
        (SimBackend::Scalar64, SimBackend::Wide256),
        (SimBackend::Wide256, SimBackend::Wide512),
        (SimBackend::Wide512, SimBackend::Scalar64),
    ] {
        let leg = make(writer).run_controlled(&RunControls {
            checkpoint_path: Some(ck.clone()),
            max_ticks: Some(53),
            ..RunControls::default()
        });
        assert_eq!(leg.stop, StopCause::Interrupted, "{writer} leg too short");
        let snap = RunSnapshot::load(&ck).unwrap();
        let resumed = make(resumer)
            .resume(&snap, &RunControls::default())
            .unwrap();
        assert_eq!(
            fingerprint(&resumed),
            expected,
            "{writer} checkpoint resumed at {resumer}"
        );
    }
    let _ = std::fs::remove_file(&ck);
}

/// Interrupting twice (three legs total) still lands on the identical
/// result: elapsed and counters accumulate across legs without skew.
#[test]
fn double_interruption_still_matches() {
    let baseline = s27_generator(11).run();
    let ck = temp_path("s27-twice");
    let leg1 = s27_generator(11).run_controlled(&RunControls {
        checkpoint_path: Some(ck.clone()),
        max_ticks: Some(9),
        ..RunControls::default()
    });
    assert_eq!(leg1.stop, StopCause::Interrupted);
    let snap1 = RunSnapshot::load(&ck).unwrap();
    let leg2 = s27_generator(11)
        .resume(
            &snap1,
            &RunControls {
                checkpoint_path: Some(ck.clone()),
                max_ticks: Some(31),
                ..RunControls::default()
            },
        )
        .unwrap();
    assert_eq!(leg2.stop, StopCause::Interrupted);
    let snap2 = RunSnapshot::load(&ck).unwrap();
    let final_leg = s27_generator(11)
        .resume(&snap2, &RunControls::default())
        .unwrap();
    assert_eq!(fingerprint(&final_leg), fingerprint(&baseline));
    let _ = std::fs::remove_file(&ck);
}

/// A resumed run can also finish under a budget: the `max_evals` stop point
/// is deterministic, so budgeted-then-resumed equals budgeted-in-one-go.
#[test]
fn budget_stop_is_deterministic_across_legs() {
    let circuit = Arc::new(gatest_netlist::benchmarks::iscas89("s27").unwrap());
    let with_budget = |evals: Option<u64>| {
        let mut config = GatestConfig::for_circuit(&circuit).with_seed(5);
        config.max_evals = evals;
        TestGenerator::new(Arc::clone(&circuit), config)
    };
    let one_go = with_budget(Some(200)).run();
    assert_eq!(one_go.stop, StopCause::BudgetExhausted);

    let ck = temp_path("s27-budget");
    let leg1 = with_budget(None).run_controlled(&RunControls {
        checkpoint_path: Some(ck.clone()),
        max_ticks: Some(7),
        ..RunControls::default()
    });
    assert_eq!(leg1.stop, StopCause::Interrupted);
    let snap = RunSnapshot::load(&ck).unwrap();
    let resumed = with_budget(Some(200))
        .resume(&snap, &RunControls::default())
        .unwrap();
    assert_eq!(resumed.stop, StopCause::BudgetExhausted);
    assert_eq!(fingerprint(&resumed), fingerprint(&one_go));
    let _ = std::fs::remove_file(&ck);
}

#[test]
fn atomic_writes_leave_no_tmp_file() {
    let ck = temp_path("s27-atomic");
    let controls = RunControls {
        checkpoint_path: Some(ck.clone()),
        max_ticks: Some(25),
        ..RunControls::default()
    };
    let leg = s27_generator(2).run_controlled(&controls);
    assert_eq!(leg.stop, StopCause::Interrupted);
    assert!(leg.checkpoint_error.is_none());
    assert!(ck.exists(), "final checkpoint written");
    let tmp = ck.with_extension("bin.tmp");
    assert!(!tmp.exists(), "temporary sibling must be renamed away");
    let _ = std::fs::remove_file(&ck);
}

#[test]
fn resume_rejects_mismatched_seed_and_circuit() {
    let ck = temp_path("s27-reject");
    let controls = RunControls {
        checkpoint_path: Some(ck.clone()),
        max_ticks: Some(12),
        ..RunControls::default()
    };
    let leg = s27_generator(3).run_controlled(&controls);
    assert_eq!(leg.stop, StopCause::Interrupted);
    let snap = RunSnapshot::load(&ck).unwrap();

    let err = s27_generator(4)
        .resume(&snap, &RunControls::default())
        .unwrap_err();
    assert!(err.to_string().contains("seed"), "{err}");

    let circuit = Arc::new(gatest_netlist::benchmarks::iscas89("s298").unwrap());
    let config = GatestConfig::for_circuit(&circuit).with_seed(3);
    let err = TestGenerator::new(circuit, config)
        .resume(&snap, &RunControls::default())
        .unwrap_err();
    assert!(err.to_string().contains("circuit"), "{err}");

    let circuit = Arc::new(gatest_netlist::benchmarks::iscas89("s27").unwrap());
    let mut config = GatestConfig::for_circuit(&circuit).with_seed(3);
    config.generations += 1;
    let err = TestGenerator::new(circuit, config)
        .resume(&snap, &RunControls::default())
        .unwrap_err();
    assert!(err.to_string().contains("digest"), "{err}");
    let _ = std::fs::remove_file(&ck);
}

#[test]
fn future_format_versions_are_rejected_with_a_clear_error() {
    let snap = arbitrary_snapshot(42);
    let mut bytes = snap.encode();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    match RunSnapshot::decode(&bytes) {
        Err(CheckpointError::VersionMismatch { found }) => assert_eq!(found, 99),
        other => panic!("expected a version mismatch, got {other:?}"),
    }
}

#[test]
fn cadence_checkpoints_are_resumable_too() {
    // Periodic (generation-cadence) checkpoints, not just final ones, must
    // resume bit-identically.
    use gatest_core::CheckpointCadence;
    let baseline = s27_generator(7).run();
    let ck = temp_path("s27-cadence");
    let leg = s27_generator(7).run_controlled(&RunControls {
        checkpoint_path: Some(ck.clone()),
        checkpoint_every: Some(CheckpointCadence::Generations(5)),
        max_ticks: Some(40),
        ..RunControls::default()
    });
    assert_eq!(leg.stop, StopCause::Interrupted);
    assert!(
        leg.telemetry.counters.checkpoint_writes >= 2,
        "cadence plus final write"
    );
    let snap = RunSnapshot::load(&ck).unwrap();
    let resumed = s27_generator(7)
        .resume(&snap, &RunControls::default())
        .unwrap();
    assert_eq!(fingerprint(&resumed), fingerprint(&baseline));
    let _ = std::fs::remove_file(&ck);
}
