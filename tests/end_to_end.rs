//! End-to-end integration tests: the full GATEST flow across all crates.

use std::sync::Arc;

use gatest_core::{report, FaultSample, GatestConfig, TestGenerator};
use gatest_netlist::benchmarks;
use gatest_sim::{FaultSim, Logic};

#[test]
fn s27_full_flow_reaches_full_coverage() {
    let circuit = Arc::new(benchmarks::iscas89("s27").expect("bundled circuit"));
    let config = GatestConfig::for_circuit(&circuit).with_seed(3);
    let result = TestGenerator::new(Arc::clone(&circuit), config).run();
    assert_eq!(
        result.detected, result.total_faults,
        "s27 is fully testable and easy"
    );
    assert!(result.vectors() < 100, "the test set should be compact");
}

#[test]
fn s298_flow_beats_equal_budget_random() {
    let circuit = Arc::new(benchmarks::iscas89("s298").expect("bundled circuit"));
    let mut config = GatestConfig::for_circuit(&circuit).with_seed(5);
    config.fault_sample = FaultSample::Count(100);
    let result = TestGenerator::new(Arc::clone(&circuit), config).run();

    // Unguided random with the same number of vectors, from the same reset
    // state (all X).
    let mut sim = FaultSim::new(Arc::clone(&circuit));
    let mut rng = gatest_ga::Rng::new(5);
    for _ in 0..result.vectors() {
        let v: Vec<Logic> = (0..circuit.num_inputs())
            .map(|_| Logic::from_bool(rng.coin()))
            .collect();
        sim.step(&v);
    }
    assert!(
        result.detected > sim.detected_count(),
        "GA {} vs random {}",
        result.detected,
        sim.detected_count()
    );
    assert!(result.fault_coverage() > 0.5);
}

#[test]
fn test_sets_replay_identically_across_simulator_instances() {
    let circuit = Arc::new(benchmarks::iscas89("s344").expect("bundled circuit"));
    let mut config = GatestConfig::for_circuit(&circuit).with_seed(7);
    config.fault_sample = FaultSample::Count(50);
    let result = TestGenerator::new(Arc::clone(&circuit), config).run();

    // Serialize the test set, parse it back, grade it fresh.
    let text = report::test_set_to_string(&result.test_set);
    let parsed = report::test_set_from_string(&text).expect("own format parses");
    assert_eq!(parsed, result.test_set);

    let mut sim = FaultSim::new(circuit);
    for v in &parsed {
        sim.step(v);
    }
    assert_eq!(sim.detected_count(), result.detected);
}

#[test]
fn runs_are_deterministic_per_seed_and_differ_across_seeds() {
    let circuit = Arc::new(benchmarks::iscas89("s386").expect("bundled circuit"));
    let run = |seed: u64| {
        let mut config = GatestConfig::for_circuit(&circuit).with_seed(seed);
        config.fault_sample = FaultSample::Count(50);
        TestGenerator::new(Arc::clone(&circuit), config).run()
    };
    let a = run(11);
    let b = run(11);
    let c = run(12);
    assert_eq!(a.test_set, b.test_set);
    assert_eq!(a.detected, b.detected);
    assert!(a.test_set != c.test_set || a.detected != c.detected);
}

#[test]
fn real_bench_file_can_be_dropped_in() {
    // Round-trip a bundled circuit through the .bench format and run the
    // generator on the re-parsed copy: what a user with the real ISCAS89
    // files would do.
    let original = benchmarks::iscas89("s27").expect("bundled circuit");
    let text = gatest_netlist::write_bench(&original);
    let reparsed = Arc::new(gatest_netlist::parse_bench("s27", &text).expect("round trip"));
    let config = GatestConfig::for_circuit(&reparsed).with_seed(1);
    let result = TestGenerator::new(reparsed, config).run();
    assert_eq!(result.detected, result.total_faults);
}

#[test]
fn sequence_phase_contributes_on_deep_circuits() {
    // On a circuit with a meaningful hard tail the sequence phase should at
    // least run attempts (and usually add vectors).
    let circuit = Arc::new(benchmarks::iscas89("s298").expect("bundled circuit"));
    let mut config = GatestConfig::for_circuit(&circuit).with_seed(9);
    config.fault_sample = FaultSample::Count(100);
    let result = TestGenerator::new(circuit, config).run();
    assert!(
        result.sequence_attempts > 0,
        "s298's tail forces sequence generation"
    );
}
