//! Memoization-layer exactness: the fitness cache, batch dedup, and
//! prefix-sharing sequence evaluation must never change what a run
//! produces — only how much simulation is spent producing it. Every test
//! here compares complete runs through `result_to_json`, which captures the
//! test set, phase trace, score checksum, and evaluation counts.

use std::path::PathBuf;
use std::sync::Arc;

use gatest_core::report::{result_to_json, score_checksum};
use gatest_core::{FaultSample, GatestConfig, RunControls, RunSnapshot, StopCause, TestGenerator};
use gatest_netlist::benchmarks::iscas89;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gatest-evalcache-{tag}-{}-{:?}.bin",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// One complete run with the given thread shape and memoization knobs,
/// reduced to its deterministic fingerprint.
fn run_fingerprint(
    name: &str,
    seed: u64,
    sample: FaultSample,
    workers: usize,
    sim_threads: usize,
    cache: usize,
    dedup: bool,
) -> (String, u64) {
    let circuit = Arc::new(iscas89(name).unwrap());
    let mut config = GatestConfig::for_circuit(&circuit)
        .with_seed(seed)
        .with_workers(workers)
        .with_sim_threads(sim_threads)
        .with_eval_cache(cache)
        .with_dedup(dedup);
    config.fault_sample = sample;
    let result = TestGenerator::new(circuit, config).run();
    assert_eq!(result.stop, StopCause::Completed);
    (result_to_json(&result), score_checksum(&result))
}

/// The tentpole guarantee on s27: with memoization fully off as the
/// reference, every combination of cache capacity (default, tiny-evicting,
/// off), dedup switch, worker count, and sim-thread count produces the
/// byte-identical result JSON and score checksum.
#[test]
fn s27_memoization_is_bit_identical_across_thread_shapes() {
    let (base_json, base_sum) = run_fingerprint("s27", 3, FaultSample::Full, 1, 1, 0, false);
    for workers in [1usize, 0] {
        for sim_threads in [1usize, 0] {
            for (cache, dedup) in [(4096usize, true), (4096, false), (0, true), (8, true)] {
                let (json, sum) = run_fingerprint(
                    "s27",
                    3,
                    FaultSample::Full,
                    workers,
                    sim_threads,
                    cache,
                    dedup,
                );
                assert_eq!(
                    sum, base_sum,
                    "score checksum at workers={workers} sim_threads={sim_threads} cache={cache} dedup={dedup}"
                );
                assert_eq!(
                    json, base_json,
                    "result JSON at workers={workers} sim_threads={sim_threads} cache={cache} dedup={dedup}"
                );
            }
        }
    }
}

/// The same guarantee on s298 with fault sampling (sequence generation runs
/// long there, exercising the prefix-sharing trie and epoch invalidation).
#[test]
fn s298_sampled_cache_on_equals_cache_off() {
    let sample = FaultSample::Count(60);
    let (base_json, base_sum) = run_fingerprint("s298", 21, sample, 1, 1, 0, false);
    for (workers, sim_threads) in [(1usize, 0usize), (0, 1), (0, 0)] {
        let (json, sum) = run_fingerprint("s298", 21, sample, workers, sim_threads, 4096, true);
        assert_eq!(sum, base_sum, "workers={workers} sim_threads={sim_threads}");
        assert_eq!(
            json, base_json,
            "workers={workers} sim_threads={sim_threads}"
        );
    }
    // Serial cache-on as well, the shape the determinism CI job diffs.
    let (json, _) = run_fingerprint("s298", 21, sample, 1, 1, 4096, true);
    assert_eq!(json, base_json, "serial cache-on");
}

/// Seed sweep: cached and uncached runs agree for every seed, not just a
/// lucky one.
#[test]
fn s27_seed_sweep_cached_equals_uncached() {
    for seed in 1..=6u64 {
        let (off, _) = run_fingerprint("s27", seed, FaultSample::Full, 1, 1, 0, false);
        let (on, _) = run_fingerprint("s27", seed, FaultSample::Full, 1, 1, 4096, true);
        assert_eq!(on, off, "seed {seed}");
    }
}

/// `--paranoid-cache` recomputes every memoized score serially and asserts
/// bit-equality inside the generator; a full run completing without
/// panicking (and matching the reference) cross-checks cache, dedup, trie,
/// pool, and packed-phase-1 paths at once.
#[test]
fn paranoid_mode_survives_a_full_run() {
    let (base_json, _) = run_fingerprint("s27", 5, FaultSample::Full, 1, 1, 0, false);
    let circuit = Arc::new(iscas89("s27").unwrap());
    let mut config = GatestConfig::for_circuit(&circuit)
        .with_seed(5)
        .with_workers(0)
        .with_eval_cache(4096);
    config.paranoid_cache = true;
    let result = TestGenerator::new(circuit, config).run();
    assert_eq!(result.stop, StopCause::Completed);
    assert_eq!(result_to_json(&result), base_json);
}

/// Kill/resume with the cache enabled: the eval epoch round-trips through
/// the checkpoint, so the resumed leg numbers GA invocations
/// exactly like the uninterrupted run and lands on the identical result —
/// even though its cache starts cold.
#[test]
fn s27_kill_resume_with_cache_round_trips_the_epoch() {
    let make = || {
        let circuit = Arc::new(iscas89("s27").unwrap());
        let config = GatestConfig::for_circuit(&circuit)
            .with_seed(3)
            .with_eval_cache(4096);
        TestGenerator::new(circuit, config)
    };
    let baseline = make().run();
    let expected = result_to_json(&baseline);
    let ck = temp_path("s27-epoch");
    for k in [5u64, 17, 43, 101] {
        let controls = RunControls {
            checkpoint_path: Some(ck.clone()),
            max_ticks: Some(k),
            ..RunControls::default()
        };
        let leg = make().run_controlled(&controls);
        if leg.stop == StopCause::Completed {
            break;
        }
        let snap = RunSnapshot::load(&ck).unwrap();
        assert!(
            snap.eval_epoch > 0,
            "a mid-run checkpoint has started at least one GA invocation"
        );
        // The epoch survives an encode/decode round-trip exactly.
        assert_eq!(
            RunSnapshot::decode(&snap.encode()).unwrap().eval_epoch,
            snap.eval_epoch
        );
        let resumed = make().resume(&snap, &RunControls::default()).unwrap();
        assert_eq!(result_to_json(&resumed), expected, "kill at tick {k}");
    }
    let _ = std::fs::remove_file(&ck);
}

/// Checkpoints written by this build are version 3; a version-1 header is
/// refused with the found version rather than misread.
#[test]
fn version_1_checkpoints_are_refused() {
    let make = || {
        let circuit = Arc::new(iscas89("s27").unwrap());
        TestGenerator::new(
            Arc::clone(&circuit),
            GatestConfig::for_circuit(&circuit).with_seed(3),
        )
    };
    let ck = temp_path("s27-v1");
    let controls = RunControls {
        checkpoint_path: Some(ck.clone()),
        max_ticks: Some(5),
        ..RunControls::default()
    };
    let leg = make().run_controlled(&controls);
    assert_eq!(leg.stop, StopCause::Interrupted);
    let mut bytes = std::fs::read(&ck).unwrap();
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        3,
        "current format version"
    );
    bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
    match RunSnapshot::decode(&bytes) {
        Err(gatest_core::CheckpointError::VersionMismatch { found: 1 }) => {}
        other => panic!("expected version-1 rejection, got {other:?}"),
    }
    let _ = std::fs::remove_file(&ck);
}
