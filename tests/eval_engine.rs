//! Evaluation-engine equivalence tests: copy-on-write checkpoints must be
//! indistinguishable from deep-copy semantics, the persistent worker pool
//! must score bit-identically to serial evaluation, and whole runs must be
//! bit-identical at every worker count.

use std::sync::Arc;

use proptest::prelude::*;

use gatest_core::EvalPool;
use gatest_core::{
    evaluate_candidate, EvalContext, EvalJob, FaultSample, FitnessScale, GatestConfig, Phase,
    TestGenerator,
};
use gatest_ga::{Chromosome, Rng};
use gatest_netlist::benchmarks::iscas89;
use gatest_sim::{FaultSim, Logic};

fn random_vector(pis: usize, rng: &mut Rng) -> Vec<Logic> {
    (0..pis).map(|_| Logic::from_bool(rng.coin())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Copy-on-write checkpoint/restore behaves exactly like a deep copy of
    /// the simulator taken at checkpoint time: after an arbitrary detour and
    /// a restore, the simulator is indistinguishable (step reports, detected
    /// counts) from the saved deep copy on any probe sequence.
    #[test]
    fn cow_restore_is_indistinguishable_from_deep_copy(
        seed in any::<u64>(),
        warm in 1usize..8,
        detour in 1usize..8,
    ) {
        let circuit = Arc::new(iscas89("s298").unwrap());
        let pis = circuit.num_inputs();
        let mut rng = Rng::new(seed);
        let mut sim = FaultSim::new(Arc::clone(&circuit));
        for _ in 0..warm {
            sim.step(&random_vector(pis, &mut rng));
        }

        let cp = sim.checkpoint();
        // `clone()` is the deep-copy reference: an independent simulator
        // frozen at checkpoint time.
        let deep = sim.clone();

        for _ in 0..detour {
            sim.step(&random_vector(pis, &mut rng));
        }
        sim.restore(&cp);

        let mut reference = deep;
        prop_assert_eq!(sim.detected_count(), reference.detected_count());
        for _ in 0..6 {
            let v = random_vector(pis, &mut rng);
            let restored_report = sim.step(&v);
            let deep_report = reference.step(&v);
            prop_assert_eq!(&restored_report, &deep_report);
        }
        prop_assert_eq!(sim.detected_count(), reference.detected_count());
    }

    /// Pool evaluation is bit-identical to serial evaluation for workers
    /// 1, 2, and 8, across random seeds, batch sizes, and phases.
    #[test]
    fn pool_scores_are_bit_identical_to_serial(
        seed in any::<u64>(),
        batch_size in 1usize..40,
        phase_pick in 0usize..3,
    ) {
        let circuit = Arc::new(iscas89("s344").unwrap());
        let pis = circuit.num_inputs();
        let mut rng = Rng::new(seed);
        let mut sim = FaultSim::new(Arc::clone(&circuit));
        for _ in 0..3 {
            sim.step(&random_vector(pis, &mut rng));
        }
        let phase = [
            Phase::Initialization,
            Phase::VectorGeneration,
            Phase::StalledVectorGeneration,
        ][phase_pick];
        let sample = sim.active_faults().to_vec();
        let scale = FitnessScale {
            faults: sample.len(),
            flip_flops: circuit.num_dffs(),
            nodes: circuit.num_gates(),
        };
        let ctx = Arc::new(EvalContext {
            epoch: 1,
            checkpoint: sim.checkpoint(),
            job: EvalJob::Vector { phase, sample, scale, pis },
        });
        let batch: Vec<Chromosome> = (0..batch_size)
            .map(|_| Chromosome::random(pis, &mut rng))
            .collect();

        let mut serial_sim = sim.clone();
        let mut scratch = Vec::new();
        let serial: Vec<f64> = batch
            .iter()
            .map(|c| evaluate_candidate(&mut serial_sim, &ctx, c, &mut scratch))
            .collect();
        for workers in [1usize, 2, 8] {
            let pool = EvalPool::new(&sim, workers);
            let pooled = pool.evaluate(&ctx, &batch);
            prop_assert_eq!(serial.len(), pooled.len());
            for (i, (a, b)) in serial.iter().zip(&pooled).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "candidate {} differs at workers={}",
                    i,
                    workers
                );
            }
        }
    }
}

/// Whole runs are bit-identical at every worker count, on every acceptance
/// circuit. This is the end-to-end determinism contract: the pool, the
/// copy-on-write checkpoints, and the packed phase-1 path may change how
/// scores are computed, never what they are.
#[test]
fn runs_are_bit_identical_across_worker_counts() {
    for name in ["s27", "s298", "s344"] {
        let circuit = Arc::new(iscas89(name).unwrap());
        let run = |workers: usize| {
            let mut config = GatestConfig::for_circuit(&circuit)
                .with_seed(23)
                .with_workers(workers);
            config.fault_sample = FaultSample::Count(60);
            TestGenerator::new(Arc::clone(&circuit), config).run()
        };
        let serial = run(1);
        for workers in [2usize, 8] {
            let pooled = run(workers);
            assert_eq!(
                serial.test_set, pooled.test_set,
                "{name}: test set differs at workers={workers}"
            );
            assert_eq!(serial.detected, pooled.detected, "{name}");
            assert_eq!(serial.phase_trace, pooled.phase_trace, "{name}");
            assert_eq!(serial.ga_evaluations, pooled.ga_evaluations, "{name}");
        }
    }
}

/// Worker count 0 (auto) must also reproduce the serial run exactly —
/// whatever parallelism the machine reports.
#[test]
fn auto_worker_count_is_bit_identical_to_serial() {
    let circuit = Arc::new(iscas89("s27").unwrap());
    let run = |workers: usize| {
        let mut config = GatestConfig::for_circuit(&circuit)
            .with_seed(4)
            .with_workers(workers);
        config.fault_sample = FaultSample::Count(60);
        TestGenerator::new(Arc::clone(&circuit), config).run()
    };
    let serial = run(1);
    let auto = run(0);
    assert_eq!(serial.test_set, auto.test_set);
    assert_eq!(serial.detected, auto.detected);
}
