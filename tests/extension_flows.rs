//! Integration flows across the extension modules: scan + PPSFP,
//! dictionary + compaction, transition generation + grading, fault
//! reports, Verilog interchange.

use std::sync::Arc;

use gatest_core::report::test_set_to_string;
use gatest_core::{compact_test_set, FaultSample, GatestConfig, TestGenerator};
use gatest_netlist::scan::full_scan;
use gatest_netlist::{benchmarks, verilog};
use gatest_sim::dictionary::FaultDictionary;
use gatest_sim::fault_report::{parse_fault_report, write_fault_report};
use gatest_sim::ppsfp::Ppsfp;
use gatest_sim::transition::TransitionFaultSim;
use gatest_sim::{FaultSim, Logic};

fn random_patterns(pis: usize, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = gatest_ga::Rng::new(seed);
    (0..count)
        .map(|_| (0..pis).map(|_| Logic::from_bool(rng.coin())).collect())
        .collect()
}

#[test]
fn scan_plus_ppsfp_beats_sequential_generation_cost() {
    // The DFT story end-to-end: scan the circuit, grade random patterns
    // with PPSFP, and confirm coverage at least matches what the full GA
    // flow earns on the unscanned circuit.
    let seq = Arc::new(benchmarks::iscas89("s298").expect("bundled circuit"));
    let mut config = GatestConfig::for_circuit(&seq).with_seed(3);
    config.fault_sample = FaultSample::Count(100);
    let ga = TestGenerator::new(Arc::clone(&seq), config).run();

    let comb = Arc::new(full_scan(&seq).circuit().clone());
    let grader = Ppsfp::new(Arc::clone(&comb)).expect("combinational after scan");
    let result = grader.grade(&random_patterns(comb.num_inputs(), 512, 9));
    assert!(
        result.coverage() >= ga.fault_coverage() - 0.05,
        "scan+random {:.2} should rival sequential GA {:.2}",
        result.coverage(),
        ga.fault_coverage()
    );
}

#[test]
fn generate_compact_dictionary_diagnose_pipeline() {
    // The full downstream pipeline on one circuit: generate -> compact ->
    // build dictionary -> diagnose an injected fault.
    let circuit = Arc::new(benchmarks::iscas89("s344").expect("bundled circuit"));
    let mut config = GatestConfig::for_circuit(&circuit).with_seed(11);
    config.fault_sample = FaultSample::Count(80);
    let result = TestGenerator::new(Arc::clone(&circuit), config).run();
    assert!(result.detected > 0);

    let (compacted, stats) = compact_test_set(&circuit, &result.test_set);
    assert_eq!(stats.detected, result.detected, "compaction keeps coverage");

    let dict = FaultDictionary::build(Arc::clone(&circuit), &compacted);
    assert_eq!(dict.detected_count(), result.detected);

    // Diagnose each of the first few detected faults from its syndrome.
    let mut diagnosed = 0;
    for (id, _) in dict.fault_list().iter().take(25) {
        let Some(syn) = dict.syndrome(id) else {
            continue;
        };
        let observed: Vec<(u32, u16)> = syn.outputs.iter().map(|&po| (syn.vector, po)).collect();
        let ranked = dict.diagnose(&observed);
        let top = ranked.first().map(|r| r.1).unwrap_or(0.0);
        if ranked
            .iter()
            .take_while(|(_, s)| *s == top)
            .any(|(f, _)| *f == id)
        {
            diagnosed += 1;
        }
    }
    assert!(diagnosed > 0, "diagnosis must locate injected faults");
}

#[test]
fn stuck_at_tests_partially_cover_transition_faults() {
    // The classic cross-model observation: a stuck-at set catches many but
    // not all transition faults.
    let circuit = Arc::new(benchmarks::iscas89("s27").expect("bundled circuit"));
    let config = GatestConfig::for_circuit(&circuit).with_seed(5);
    let stuck = TestGenerator::new(Arc::clone(&circuit), config).run();
    assert_eq!(stuck.detected, stuck.total_faults, "s27 stuck-at is easy");

    let mut tsim = TransitionFaultSim::new(Arc::clone(&circuit));
    for v in &stuck.test_set {
        tsim.step(v);
    }
    let tcov = tsim.detected_count() as f64 / tsim.total_faults() as f64;
    assert!(tcov > 0.3, "stuck-at tests catch transitions: {tcov:.2}");
    assert!(
        tsim.detected_count() < tsim.total_faults(),
        "but not all of them"
    );
}

#[test]
fn fault_report_survives_serialization_pipeline() {
    let circuit = Arc::new(benchmarks::iscas89("s386").expect("bundled circuit"));
    let mut sim = FaultSim::new(Arc::clone(&circuit));
    for v in random_patterns(circuit.num_inputs(), 64, 3) {
        sim.step(&v);
    }
    let report = write_fault_report(&circuit, &sim);
    let parsed = parse_fault_report(&circuit, &report).expect("own format parses");
    let detected = parsed
        .iter()
        .filter(|(_, s)| matches!(s, gatest_sim::FaultStatus::Detected { .. }))
        .count();
    assert_eq!(detected, sim.detected_count());
}

#[test]
fn verilog_interchange_preserves_atpg_results() {
    // Write a circuit as Verilog, parse it back, and confirm a test set
    // generated on the original grades identically on the round-tripped
    // netlist.
    let original = Arc::new(benchmarks::iscas89("s27").expect("bundled circuit"));
    let config = GatestConfig::for_circuit(&original).with_seed(7);
    let result = TestGenerator::new(Arc::clone(&original), config).run();

    let text = verilog::write_verilog(&original);
    let back = Arc::new(verilog::parse_verilog(&text).expect("round trip"));
    let mut sim = FaultSim::new(back);
    for v in &result.test_set {
        sim.step(v);
    }
    assert_eq!(sim.detected_count(), result.detected);

    // And the test-set text format is stable alongside.
    let serialized = test_set_to_string(&result.test_set);
    assert_eq!(serialized.lines().count(), result.vectors());
}
