//! Property-based integration tests over randomly generated circuits.

use std::sync::Arc;

use proptest::prelude::*;

use gatest_netlist::{parse_bench, write_bench, CircuitProfile, SyntheticGenerator};
use gatest_sim::{FaultList, FaultSim, GoodSim, Logic};

fn arbitrary_profile() -> impl Strategy<Value = (CircuitProfile, u64)> {
    (
        1usize..6,  // inputs
        1usize..5,  // outputs
        0usize..8,  // dffs
        5usize..40, // gates
        any::<u64>(),
    )
        .prop_map(|(inputs, outputs, dffs, gates, seed)| {
            let seq_depth = if dffs == 0 {
                0
            } else {
                1 + (seed as u32 % dffs as u32)
            };
            (
                CircuitProfile {
                    name: format!("prop_{inputs}_{outputs}_{dffs}_{gates}"),
                    inputs,
                    outputs,
                    dffs,
                    gates,
                    seq_depth,
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated circuits always hit their requested port counts and depth.
    #[test]
    fn generator_meets_profile((profile, seed) in arbitrary_profile()) {
        let circuit = SyntheticGenerator::new(seed).generate(&profile);
        prop_assert_eq!(circuit.num_inputs(), profile.inputs);
        prop_assert_eq!(circuit.num_outputs(), profile.outputs);
        prop_assert_eq!(circuit.num_dffs(), profile.dffs);
        prop_assert_eq!(
            gatest_netlist::depth::sequential_depth(&circuit),
            profile.seq_depth
        );
    }

    /// The .bench writer/parser round-trips any generated circuit.
    #[test]
    fn bench_format_round_trips((profile, seed) in arbitrary_profile()) {
        let circuit = SyntheticGenerator::new(seed).generate(&profile);
        let text = write_bench(&circuit);
        let back = parse_bench(circuit.name(), &text).expect("own output parses");
        prop_assert_eq!(back.num_gates(), circuit.num_gates());
        for id in circuit.net_ids() {
            let other = back.find_net(circuit.net_name(id)).expect("net preserved");
            prop_assert_eq!(back.kind(other), circuit.kind(id));
        }
        // And the round-tripped circuit simulates identically.
        let mut a = GoodSim::new(Arc::new(circuit));
        let mut b = GoodSim::new(Arc::new(back));
        let mut rng = gatest_ga::Rng::new(seed);
        for _ in 0..8 {
            let v: Vec<Logic> = (0..profile.inputs)
                .map(|_| Logic::from_bool(rng.coin()))
                .collect();
            prop_assert_eq!(a.apply(&v), b.apply(&v));
            prop_assert_eq!(a.output_values(), b.output_values());
        }
    }

    /// Checkpoint/restore makes fault simulation exactly repeatable on any
    /// generated circuit.
    #[test]
    fn checkpoint_restore_is_exact_everywhere((profile, seed) in arbitrary_profile()) {
        let circuit = Arc::new(SyntheticGenerator::new(seed).generate(&profile));
        let mut sim = FaultSim::new(Arc::clone(&circuit));
        let mut rng = gatest_ga::Rng::new(seed ^ 0xabc);
        let vector = |rng: &mut gatest_ga::Rng| -> Vec<Logic> {
            (0..profile.inputs).map(|_| Logic::from_bool(rng.coin())).collect()
        };
        for _ in 0..4 {
            let v = vector(&mut rng);
            sim.step(&v);
        }
        let cp = sim.checkpoint();
        let probe: Vec<Vec<Logic>> = (0..3).map(|_| vector(&mut rng)).collect();
        let first: Vec<_> = probe.iter().map(|v| sim.step(v)).collect();
        sim.restore(&cp);
        let second: Vec<_> = probe.iter().map(|v| sim.step(v)).collect();
        prop_assert_eq!(first, second);
    }

    /// Fault dropping is permanent: a fault never reappears in the active
    /// list after detection, across any vector sequence.
    #[test]
    fn detected_faults_stay_detected((profile, seed) in arbitrary_profile()) {
        let circuit = Arc::new(SyntheticGenerator::new(seed).generate(&profile));
        let mut sim = FaultSim::new(Arc::clone(&circuit));
        let mut rng = gatest_ga::Rng::new(seed ^ 0x123);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..12 {
            let v: Vec<Logic> = (0..profile.inputs)
                .map(|_| Logic::from_bool(rng.coin()))
                .collect();
            for f in sim.step(&v).newly_detected {
                prop_assert!(seen.insert(f), "fault {f:?} detected twice");
            }
            for f in &seen {
                prop_assert!(!sim.active_faults().contains(f));
            }
        }
        prop_assert_eq!(sim.detected_count(), seen.len());
    }

    /// Structural Verilog round-trips any generated circuit with identical
    /// simulation behaviour.
    #[test]
    fn verilog_round_trips((profile, seed) in arbitrary_profile()) {
        let circuit = SyntheticGenerator::new(seed).generate(&profile);
        let text = gatest_netlist::verilog::write_verilog(&circuit);
        let back = gatest_netlist::verilog::parse_verilog(&text).expect("own output parses");
        prop_assert_eq!(back.num_gates(), circuit.num_gates());
        let mut a = GoodSim::new(Arc::new(circuit));
        let mut b = GoodSim::new(Arc::new(back));
        let mut rng = gatest_ga::Rng::new(seed ^ 0x77);
        for _ in 0..6 {
            let v: Vec<Logic> = (0..profile.inputs)
                .map(|_| Logic::from_bool(rng.coin()))
                .collect();
            prop_assert_eq!(a.apply(&v), b.apply(&v));
            prop_assert_eq!(a.output_values(), b.output_values());
        }
    }

    /// Collapsed lists are never larger than full lists, and every
    /// collapsed representative exists in the full universe.
    #[test]
    fn collapsing_is_sound((profile, seed) in arbitrary_profile()) {
        let circuit = SyntheticGenerator::new(seed).generate(&profile);
        let full = FaultList::full(&circuit);
        let collapsed = FaultList::collapsed(&circuit);
        prop_assert!(collapsed.len() <= full.len());
        prop_assert!(!collapsed.is_empty());
        let universe: std::collections::HashSet<_> =
            full.iter().map(|(_, f)| f).collect();
        for (_, f) in collapsed.iter() {
            prop_assert!(universe.contains(&f));
        }
    }
}
