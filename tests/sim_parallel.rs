//! Fault-group parallel simulation equivalence tests: `step` with any
//! sim-thread count must be bit-identical to the serial path — same step
//! reports, same detection order, same sparse faulty flip-flop state — and
//! whole GA runs must be bit-identical at every workers × sim-threads
//! combination. The group pool may change how steps are computed, never
//! what they produce.

use std::sync::Arc;

use proptest::prelude::*;

use gatest_core::report::result_to_json;
use gatest_core::{FaultSample, GatestConfig, TestGenerator};
use gatest_ga::Rng;
use gatest_netlist::benchmarks::iscas89;
use gatest_netlist::generate::{CircuitProfile, SyntheticGenerator};
use gatest_sim::{FaultId, FaultSim, Logic, SimBackend};

fn random_vector(pis: usize, rng: &mut Rng) -> Vec<Logic> {
    (0..pis).map(|_| Logic::from_bool(rng.coin())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel fault-group dispatch is indistinguishable from the serial
    /// path on random synthetic circuits: every step report (detection
    /// order included) and every fault's sparse faulty flip-flop state
    /// match at sim-thread counts 2 and 8.
    #[test]
    fn parallel_step_is_bit_identical_on_random_circuits(
        seed in any::<u64>(),
        inputs in 2usize..8,
        dffs in 1usize..12,
        gates in 10usize..60,
        steps in 2usize..10,
    ) {
        let profile = CircuitProfile {
            name: format!("rand_{seed:016x}"),
            inputs,
            outputs: 2,
            dffs,
            gates,
            seq_depth: (dffs as u32).min(3),
        };
        let circuit = Arc::new(SyntheticGenerator::new(seed).generate(&profile));
        let pis = circuit.num_inputs();
        let mut vec_rng = Rng::new(seed ^ 0x5eed);
        let vectors: Vec<Vec<Logic>> =
            (0..steps).map(|_| random_vector(pis, &mut vec_rng)).collect();

        let mut serial = FaultSim::new(Arc::clone(&circuit));
        let serial_reports: Vec<_> = vectors.iter().map(|v| serial.step(v)).collect();

        for threads in [2usize, 8] {
            let mut par = FaultSim::new(Arc::clone(&circuit));
            par.set_sim_threads(threads);
            for (n, v) in vectors.iter().enumerate() {
                let report = par.step(v);
                prop_assert_eq!(
                    &report,
                    &serial_reports[n],
                    "step {} differs at sim_threads={}",
                    n,
                    threads
                );
            }
            prop_assert_eq!(par.detected_count(), serial.detected_count());
            for i in 0..serial.fault_list().len() {
                let id = FaultId(i as u32);
                prop_assert_eq!(
                    par.faulty_ff_state(id),
                    serial.faulty_ff_state(id),
                    "faulty FF state of fault {} differs at sim_threads={}",
                    i,
                    threads
                );
            }
        }
    }
}

/// Step-level identity on the largest tier-1 circuit: s1423 with the full
/// fault list, over a sampled vector stream. Checks reports (detection
/// order included) and the sparse faulty flip-flop state of every fault.
#[test]
fn s1423_sampled_steps_are_bit_identical() {
    let circuit = Arc::new(iscas89("s1423").unwrap());
    let pis = circuit.num_inputs();
    let mut rng = Rng::new(11);
    let vectors: Vec<Vec<Logic>> = (0..24).map(|_| random_vector(pis, &mut rng)).collect();

    let mut serial = FaultSim::new(Arc::clone(&circuit));
    let serial_reports: Vec<_> = vectors.iter().map(|v| serial.step(v)).collect();

    for threads in [2usize, 8] {
        let mut par = FaultSim::new(Arc::clone(&circuit));
        par.set_sim_threads(threads);
        for (n, v) in vectors.iter().enumerate() {
            assert_eq!(
                par.step(v),
                serial_reports[n],
                "step {n} differs at sim_threads={threads}"
            );
        }
        assert_eq!(par.detected_count(), serial.detected_count());
        for i in 0..serial.fault_list().len() {
            let id = FaultId(i as u32);
            assert_eq!(
                par.faulty_ff_state(id),
                serial.faulty_ff_state(id),
                "faulty FF state of fault {i} differs at sim_threads={threads}"
            );
        }
    }
}

/// Whole GA runs are bit-identical at every sim-thread count, including
/// auto-detection. Same contract the evaluation pool already honors for
/// worker counts, now one level down.
#[test]
fn runs_are_bit_identical_across_sim_thread_counts() {
    let circuit = Arc::new(iscas89("s298").unwrap());
    let run = |sim_threads: usize| {
        let mut config = GatestConfig::for_circuit(&circuit)
            .with_seed(23)
            .with_sim_threads(sim_threads);
        config.fault_sample = FaultSample::Count(60);
        TestGenerator::new(Arc::clone(&circuit), config).run()
    };
    let serial = run(1);
    for sim_threads in [2usize, 8, 0] {
        let par = run(sim_threads);
        assert_eq!(
            serial.test_set, par.test_set,
            "test set differs at sim_threads={sim_threads}"
        );
        assert_eq!(serial.detected, par.detected, "sim_threads={sim_threads}");
        assert_eq!(
            serial.phase_trace, par.phase_trace,
            "sim_threads={sim_threads}"
        );
        assert_eq!(
            serial.ga_evaluations, par.ga_evaluations,
            "sim_threads={sim_threads}"
        );
    }
}

/// Fitness-pool workers and fault-group sim threads compose without
/// changing results: every workers × sim-threads combination reproduces
/// the fully serial run bit for bit.
#[test]
fn workers_and_sim_threads_compose_bit_identically() {
    let circuit = Arc::new(iscas89("s27").unwrap());
    let run = |workers: usize, sim_threads: usize| {
        let mut config = GatestConfig::for_circuit(&circuit)
            .with_seed(4)
            .with_workers(workers)
            .with_sim_threads(sim_threads);
        config.fault_sample = FaultSample::Count(60);
        TestGenerator::new(Arc::clone(&circuit), config).run()
    };
    let serial = run(1, 1);
    for (workers, sim_threads) in [(1, 2), (2, 2), (8, 2), (2, 8), (0, 0)] {
        let par = run(workers, sim_threads);
        assert_eq!(
            serial.test_set, par.test_set,
            "test set differs at workers={workers} sim_threads={sim_threads}"
        );
        assert_eq!(
            serial.detected, par.detected,
            "workers={workers} sim_threads={sim_threads}"
        );
        assert_eq!(
            serial.ga_evaluations, par.ga_evaluations,
            "workers={workers} sim_threads={sim_threads}"
        );
    }
}

/// The packed-value backend is an execution detail exactly like the thread
/// knobs: whole GA runs serialize to byte-identical result JSON (test set,
/// phase trace, and score checksum included) for scalar64, wide256,
/// wide512, and auto at every workers × sim-threads combination. s298's
/// full fault list spans several 64-fault groups, so the wide backends
/// genuinely repack faults into fewer, wider groups here — the merge order
/// is what's under test, not just the lane arithmetic.
#[test]
fn runs_are_byte_identical_across_sim_widths() {
    let circuit = Arc::new(iscas89("s298").unwrap());
    let run = |backend: SimBackend, workers: usize, sim_threads: usize| {
        let mut config = GatestConfig::for_circuit(&circuit)
            .with_seed(23)
            .with_workers(workers)
            .with_sim_threads(sim_threads)
            .with_sim_width(backend);
        config.fault_sample = FaultSample::Count(60);
        result_to_json(&TestGenerator::new(Arc::clone(&circuit), config).run())
    };
    let reference = run(SimBackend::Scalar64, 1, 1);
    for workers in [1usize, 2, 8] {
        for sim_threads in [1usize, 2, 8] {
            let wide = run(SimBackend::Wide256, workers, sim_threads);
            assert_eq!(
                reference, wide,
                "wide256 result JSON differs at workers={workers} sim_threads={sim_threads}"
            );
        }
    }
    for (workers, sim_threads) in [(1, 1), (8, 8)] {
        let wide = run(SimBackend::Wide512, workers, sim_threads);
        assert_eq!(
            reference, wide,
            "wide512 result JSON differs at workers={workers} sim_threads={sim_threads}"
        );
        let auto = run(SimBackend::Auto, workers, sim_threads);
        assert_eq!(
            reference, auto,
            "auto result JSON differs at workers={workers} sim_threads={sim_threads}"
        );
    }
}
