//! Cross-validation of the packed, event-driven fault simulator against an
//! independent, brute-force scalar implementation, over several circuits of
//! the bundled suite.

use std::sync::Arc;

use gatest_netlist::benchmarks;
use gatest_netlist::levelize::Levelization;
use gatest_netlist::Circuit;
use gatest_sim::eval::eval_scalar;
use gatest_sim::{Fault, FaultList, FaultSim, FaultSite, Logic};

/// Simulates the good and single-fault machines independently, gate by
/// gate, frame by frame — no packing, no events, no sharing. Slow and
/// obviously correct.
fn reference_detects(circuit: &Arc<Circuit>, fault: Fault, sequence: &[Vec<Logic>]) -> bool {
    let lev = Levelization::new(circuit);
    let mut gvals = vec![Logic::X; circuit.num_gates()];
    let mut fvals = vec![Logic::X; circuit.num_gates()];
    let mut gstate = vec![Logic::X; circuit.num_dffs()];
    let mut fstate = vec![Logic::X; circuit.num_dffs()];
    for vec in sequence {
        for (i, &ff) in circuit.dffs().iter().enumerate() {
            gvals[ff.index()] = gstate[i];
            fvals[ff.index()] = fstate[i];
        }
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            gvals[pi.index()] = vec[i];
            fvals[pi.index()] = vec[i];
        }
        if let FaultSite::Stem(net) = fault.site {
            if !circuit.kind(net).is_combinational() {
                fvals[net.index()] = fault.stuck;
            }
        }
        for &gate in lev.schedule() {
            let kind = circuit.kind(gate);
            if !kind.is_combinational() {
                continue;
            }
            let gf: Vec<Logic> = circuit
                .fanin(gate)
                .iter()
                .map(|&n| gvals[n.index()])
                .collect();
            gvals[gate.index()] = eval_scalar(kind, &gf);
            let mut ff_in: Vec<Logic> = circuit
                .fanin(gate)
                .iter()
                .map(|&n| fvals[n.index()])
                .collect();
            if let FaultSite::Branch { gate: fg, pin } = fault.site {
                if fg == gate {
                    ff_in[pin as usize] = fault.stuck;
                }
            }
            let mut out = eval_scalar(kind, &ff_in);
            if fault.site == FaultSite::Stem(gate) {
                out = fault.stuck;
            }
            fvals[gate.index()] = out;
        }
        for &po in circuit.outputs() {
            let g = gvals[po.index()];
            let f = fvals[po.index()];
            if g.is_known() && f.is_known() && g != f {
                return true;
            }
        }
        for (i, &ff) in circuit.dffs().iter().enumerate() {
            let d = circuit.fanin(ff)[0];
            gstate[i] = gvals[d.index()];
            let mut fv = fvals[d.index()];
            if let FaultSite::Branch { gate: fg, pin } = fault.site {
                if fg == ff {
                    debug_assert_eq!(pin, 0);
                    fv = fault.stuck;
                }
            }
            fstate[i] = fv;
        }
    }
    false
}

fn random_sequence(pis: usize, len: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = gatest_ga::Rng::new(seed);
    (0..len)
        .map(|_| (0..pis).map(|_| Logic::from_bool(rng.coin())).collect())
        .collect()
}

fn cross_validate(name: &str, vectors: usize, seed: u64) {
    let circuit = Arc::new(benchmarks::iscas89(name).expect("bundled circuit"));
    let faults = FaultList::collapsed(&circuit);
    let mut sequence = vec![vec![Logic::Zero; circuit.num_inputs()]; 4];
    sequence.extend(random_sequence(circuit.num_inputs(), vectors, seed));

    let mut sim = FaultSim::with_faults(Arc::clone(&circuit), faults.clone());
    let mut fast = vec![false; faults.len()];
    for v in &sequence {
        for f in sim.step(v).newly_detected {
            fast[f.index()] = true;
        }
    }

    for (id, fault) in faults.iter() {
        let expect = reference_detects(&circuit, fault, &sequence);
        assert_eq!(
            fast[id.index()],
            expect,
            "{name}: fault {} disagrees with the reference",
            fault.display(&circuit)
        );
    }
}

#[test]
fn s27_matches_reference() {
    cross_validate("s27", 32, 1);
}

#[test]
fn s298_matches_reference() {
    cross_validate("s298", 24, 2);
}

#[test]
fn s344_matches_reference() {
    cross_validate("s344", 16, 3);
}

#[test]
fn s386_matches_reference() {
    cross_validate("s386", 16, 4);
}

#[test]
fn sampled_stepping_detects_subset_of_full() {
    let circuit = Arc::new(benchmarks::iscas89("s298").expect("bundled circuit"));
    let sequence = random_sequence(circuit.num_inputs(), 32, 9);

    let mut full = FaultSim::new(Arc::clone(&circuit));
    let mut full_detected = std::collections::HashSet::new();
    for v in &sequence {
        for f in full.step(v).newly_detected {
            full_detected.insert(f);
        }
    }

    // Sample = every third fault; everything the sampled sim detects must
    // also be detected by the full sim under identical vectors.
    let mut sampled = FaultSim::new(Arc::clone(&circuit));
    let sample: Vec<_> = sampled.active_faults().iter().copied().step_by(3).collect();
    for v in &sequence {
        for f in sampled.step_sampled(v, &sample).newly_detected {
            assert!(
                full_detected.contains(&f),
                "sampled sim detected {f:?} that full sim missed"
            );
        }
    }
}
