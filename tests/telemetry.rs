//! Integration tests of the telemetry event stream against the generator's
//! own result: a full run's trace must tell the same story as
//! `TestGenResult`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gatest_core::{GatestConfig, TestGenerator};
use gatest_netlist::benchmarks;
use gatest_telemetry::{Instruments, MetricsServer, RunEvent, RunObserver};

/// Records every event, in order.
#[derive(Default)]
struct Recorder(Mutex<Vec<RunEvent>>);

impl RunObserver for Recorder {
    fn on_event(&self, event: &RunEvent) {
        self.0.lock().unwrap().push(event.clone());
    }
}

#[test]
fn s27_run_emits_a_consistent_event_stream() {
    let circuit = Arc::new(benchmarks::iscas89("s27").expect("bundled circuit"));
    let config = GatestConfig::for_circuit(&circuit).with_seed(3);
    let recorder = Arc::new(Recorder::default());
    let result = TestGenerator::new(Arc::clone(&circuit), config)
        .with_observer(recorder.clone())
        .run();
    let events = recorder.0.lock().unwrap();

    // Lifecycle: starts with run_started, ends with run_finished, and every
    // one of the six kinds appears at least once.
    assert!(matches!(events.first(), Some(RunEvent::RunStarted { .. })));
    assert!(matches!(events.last(), Some(RunEvent::RunFinished { .. })));
    for kind in RunEvent::KINDS {
        assert!(
            events.iter().any(|e| e.kind() == kind),
            "no {kind} event in the stream"
        );
    }

    // The phase_entered sequence is monotone in committed vectors and
    // consistent with the result's phase trace: the phases of the committed
    // vectors, run-length compressed, are exactly the phases entered
    // (modulo a possibly commit-less trailing phase-4 entry).
    let entered: Vec<(u8, usize)> = events
        .iter()
        .filter_map(|e| match e {
            RunEvent::PhaseEntered { phase, vectors } => Some((*phase, *vectors)),
            _ => None,
        })
        .collect();
    assert!(!entered.is_empty());
    assert_eq!(entered[0].0, 1, "runs start in phase 1 (initialization)");
    assert!(
        entered.windows(2).all(|w| w[0].1 <= w[1].1),
        "committed-vector counts at phase entry must be monotone: {entered:?}"
    );
    let committed_phases: Vec<u8> = events
        .iter()
        .filter_map(|e| match e {
            RunEvent::VectorCommitted { phase, .. } => Some(*phase),
            _ => None,
        })
        .collect();
    assert_eq!(
        committed_phases, result.phase_trace,
        "one vector_committed per committed frame, in phase-trace order"
    );
    let mut compressed: Vec<u8> = Vec::new();
    for p in &committed_phases {
        if compressed.last() != Some(p) {
            compressed.push(*p);
        }
    }
    let mut entered_phases: Vec<u8> = entered.iter().map(|(p, _)| *p).collect();
    if entered_phases.last() == Some(&4) && compressed.last() != Some(&4) {
        entered_phases.pop(); // phase 4 entered but no sequence succeeded
    }
    assert_eq!(
        entered_phases, compressed,
        "phase entries must match the compressed phase trace"
    );

    // Commit events between two phase entries all belong to the entered
    // phase.
    let mut current = 0u8;
    for event in events.iter() {
        match event {
            RunEvent::PhaseEntered { phase, .. } => current = *phase,
            RunEvent::VectorCommitted { phase, .. } => {
                assert_eq!(*phase, current, "commit outside its entered phase")
            }
            _ => {}
        }
    }

    // The final event repeats the printed result, snapshot included.
    match events.last().expect("non-empty") {
        RunEvent::RunFinished {
            detected,
            total_faults,
            vectors,
            ga_evaluations,
            elapsed_secs,
            budget_exhausted,
            snapshot,
        } => {
            assert_eq!(*detected, result.detected);
            assert_eq!(*total_faults, result.total_faults);
            assert_eq!(*vectors, result.vectors());
            assert_eq!(*ga_evaluations, result.ga_evaluations);
            assert!(*elapsed_secs >= 0.0);
            assert!(!budget_exhausted, "no budget was configured");
            assert_eq!(snapshot.as_ref(), &result.telemetry);
        }
        other => panic!("expected run_finished, got {other:?}"),
    }

    // Aggregates recomputed from the stream match the result's totals.
    let generation_events = events
        .iter()
        .filter(|e| matches!(e, RunEvent::GaGenerationEvaluated { .. }))
        .count() as u64;
    assert_eq!(generation_events, result.telemetry.ga_generations);
    let summed_evaluations: usize = events
        .iter()
        .filter_map(|e| match e {
            RunEvent::GaGenerationEvaluated { evaluations, .. } => Some(*evaluations),
            _ => None,
        })
        .sum();
    assert_eq!(
        summed_evaluations, result.ga_evaluations,
        "per-generation deltas must sum to the run's evaluation total"
    );
    let fault_events = events
        .iter()
        .filter(|e| matches!(e, RunEvent::FaultDetected { .. }))
        .count();
    assert_eq!(
        fault_events, result.detected,
        "one fault_detected per detected fault"
    );
    let last_total = events.iter().rev().find_map(|e| match e {
        RunEvent::VectorCommitted { detected_total, .. } => Some(*detected_total),
        _ => None,
    });
    assert_eq!(last_total, Some(result.detected));
}

#[test]
fn observed_and_unobserved_runs_are_identical() {
    let circuit = Arc::new(benchmarks::iscas89("s298").expect("bundled circuit"));
    let mut config = GatestConfig::for_circuit(&circuit).with_seed(11);
    config.fault_sample = gatest_core::FaultSample::Count(60);

    let plain = TestGenerator::new(Arc::clone(&circuit), config.clone()).run();
    let observed = TestGenerator::new(Arc::clone(&circuit), config)
        .with_observer(Arc::new(Recorder::default()))
        .run();
    assert_eq!(
        plain.test_set, observed.test_set,
        "observers must not steer"
    );
    assert_eq!(plain.detected, observed.detected);
    assert_eq!(plain.phase_trace, observed.phase_trace);
    assert_eq!(plain.ga_evaluations, observed.ga_evaluations);
}

/// One `GET` against the metrics server; `None` on any transport failure
/// (the poller retries, so individual misses are fine).
fn http_get(addr: SocketAddr, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).ok()?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let (_, body) = response.split_once("\r\n\r\n")?;
    Some(body.to_owned())
}

/// Every instrumentation flag combination — event observer, span/metrics
/// bundle, live metrics server — must produce the bit-identical result the
/// bare run produces, on both a trivial and a mid-size circuit. The server
/// combination also exercises `/metrics` and `/healthz` from another thread
/// while the run executes (the exposition path only reads shared atomics).
#[test]
fn all_instrumentation_combinations_are_bit_identical() {
    for (name, seed, sample) in [("s27", 3, None), ("s298", 11, Some(60))] {
        let circuit = Arc::new(benchmarks::iscas89(name).expect("bundled circuit"));
        let mut config = GatestConfig::for_circuit(&circuit).with_seed(seed);
        if let Some(n) = sample {
            config.fault_sample = gatest_core::FaultSample::Count(n);
        }
        let reference = TestGenerator::new(Arc::clone(&circuit), config.clone()).run();
        assert!(
            reference.telemetry.spans.is_empty(),
            "no spans without an instruments bundle"
        );

        for observe in [false, true] {
            for instrument in [false, true] {
                for serve in [false, true] {
                    if serve && !instrument {
                        continue; // the server exposes the bundle
                    }
                    if !(observe || instrument) {
                        continue; // that is the reference run itself
                    }
                    let combo =
                        format!("{name} observe={observe} instrument={instrument} serve={serve}");
                    let mut generator = TestGenerator::new(Arc::clone(&circuit), config.clone());
                    let instruments = instrument.then(Instruments::new);
                    if let Some(instruments) = &instruments {
                        generator = generator.with_instruments(Arc::clone(instruments));
                    }
                    if observe {
                        generator = generator.with_observer(Arc::new(Recorder::default()));
                    }
                    let server = match (&instruments, serve) {
                        (Some(instruments), true) => Some(
                            MetricsServer::bind(
                                "127.0.0.1:0",
                                Arc::clone(instruments),
                                Arc::clone(generator.telemetry_counters()),
                            )
                            .expect("bind metrics server"),
                        ),
                        _ => None,
                    };
                    // Poll both endpoints concurrently with the run; the
                    // server stays up until dropped, so the final attempts
                    // always land.
                    let poller = server.as_ref().map(|s| {
                        let addr = s.local_addr();
                        std::thread::spawn(move || {
                            let (mut metrics, mut health) = (String::new(), String::new());
                            for _ in 0..20 {
                                if let Some(b) = http_get(addr, "/metrics") {
                                    metrics = b;
                                }
                                if let Some(b) = http_get(addr, "/healthz") {
                                    health = b;
                                }
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            (metrics, health)
                        })
                    });

                    let result = generator.run();
                    if let Some(poller) = poller {
                        let (metrics, health) = poller.join().expect("poller");
                        assert!(
                            metrics.contains("gatest_sim_gate_evals_total"),
                            "{combo}: metrics exposition missing counters: {metrics}"
                        );
                        assert!(
                            health.contains("\"status\":\"ok\""),
                            "{combo}: bad healthz: {health}"
                        );
                    }
                    drop(server);

                    assert_eq!(
                        result.test_set, reference.test_set,
                        "{combo}: test set diverged"
                    );
                    assert_eq!(result.detected, reference.detected, "{combo}");
                    assert_eq!(result.phase_trace, reference.phase_trace, "{combo}");
                    assert_eq!(result.ga_evaluations, reference.ga_evaluations, "{combo}");
                    assert_eq!(
                        result.telemetry.phase_time.len(),
                        reference.telemetry.phase_time.len(),
                        "{combo}"
                    );
                    assert_eq!(
                        result.telemetry.spans.is_empty(),
                        !instrument,
                        "{combo}: span aggregates follow the bundle"
                    );
                }
            }
        }
    }
}
