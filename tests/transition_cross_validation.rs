//! Cross-validation of the packed transition-fault simulator against an
//! independent scalar implementation of the gross-delay model.

use std::sync::Arc;

use gatest_netlist::benchmarks;
use gatest_netlist::levelize::Levelization;
use gatest_netlist::Circuit;
use gatest_sim::eval::eval_scalar;
use gatest_sim::transition::{transition_universe, TransitionFault, TransitionFaultSim};
use gatest_sim::Logic;

/// Scalar reference: simulate the good machine and one faulty machine side
/// by side. The faulty machine forces the fault net to its old value in
/// every frame where the *good* machine launches the slow transition
/// (`good[t-1] = old`, `good[t] = new`), and otherwise evaluates normally
/// from its own (possibly diverged) state.
fn reference_detects(
    circuit: &Arc<Circuit>,
    fault: TransitionFault,
    sequence: &[Vec<Logic>],
) -> bool {
    let lev = Levelization::new(circuit);
    let n = circuit.num_gates();
    let mut gvals = vec![Logic::X; n];
    let mut fvals = vec![Logic::X; n];
    let mut gstate = vec![Logic::X; circuit.num_dffs()];
    let mut fstate = vec![Logic::X; circuit.num_dffs()];
    let mut prev_good = vec![Logic::X; n];

    for vec in sequence {
        prev_good.copy_from_slice(&gvals);
        for (i, &ff) in circuit.dffs().iter().enumerate() {
            gvals[ff.index()] = gstate[i];
            fvals[ff.index()] = fstate[i];
        }
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            gvals[pi.index()] = vec[i];
            fvals[pi.index()] = vec[i];
        }
        // Evaluate the good machine first, frame-complete, so the launch
        // condition can compare prev/current good values of the fault net.
        for &gate in lev.schedule() {
            let kind = circuit.kind(gate);
            if !kind.is_combinational() {
                continue;
            }
            let fanin: Vec<Logic> = circuit
                .fanin(gate)
                .iter()
                .map(|&s| gvals[s.index()])
                .collect();
            gvals[gate.index()] = eval_scalar(kind, &fanin);
        }
        let launched = prev_good[fault.net.index()] == fault.slow.old_value()
            && gvals[fault.net.index()] == fault.slow.new_value();

        // Faulty machine: sources (PIs/FFs) already set; force the fault
        // net if it is a source and launched, then evaluate.
        if launched && !circuit.kind(fault.net).is_combinational() {
            fvals[fault.net.index()] = fault.slow.old_value();
        }
        for &gate in lev.schedule() {
            let kind = circuit.kind(gate);
            if !kind.is_combinational() {
                continue;
            }
            let fanin: Vec<Logic> = circuit
                .fanin(gate)
                .iter()
                .map(|&s| fvals[s.index()])
                .collect();
            let mut out = eval_scalar(kind, &fanin);
            if launched && gate == fault.net {
                out = fault.slow.old_value();
            }
            fvals[gate.index()] = out;
        }

        for &po in circuit.outputs() {
            let g = gvals[po.index()];
            let f = fvals[po.index()];
            if g.is_known() && f.is_known() && g != f {
                return true;
            }
        }
        for (i, &ff) in circuit.dffs().iter().enumerate() {
            let d = circuit.fanin(ff)[0];
            gstate[i] = gvals[d.index()];
            fstate[i] = fvals[d.index()];
        }
    }
    false
}

fn random_sequence(pis: usize, len: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = gatest_ga::Rng::new(seed);
    (0..len)
        .map(|_| (0..pis).map(|_| Logic::from_bool(rng.coin())).collect())
        .collect()
}

fn cross_validate(name: &str, vectors: usize, seed: u64) {
    let circuit = Arc::new(benchmarks::iscas89(name).expect("bundled circuit"));
    let faults = transition_universe(&circuit);
    let mut sequence = vec![vec![Logic::Zero; circuit.num_inputs()]; 4];
    sequence.extend(random_sequence(circuit.num_inputs(), vectors, seed));

    let mut sim = TransitionFaultSim::with_faults(Arc::clone(&circuit), faults.clone());
    let mut fast = vec![false; faults.len()];
    for v in &sequence {
        for f in sim.step(v).newly_detected {
            fast[f.index()] = true;
        }
    }

    for (idx, &fault) in faults.iter().enumerate() {
        let expect = reference_detects(&circuit, fault, &sequence);
        assert_eq!(
            fast[idx],
            expect,
            "{name}: transition fault {} disagrees with the reference",
            fault.display(&circuit)
        );
    }
}

#[test]
fn s27_transition_sim_matches_reference() {
    cross_validate("s27", 32, 1);
}

#[test]
fn s298_transition_sim_matches_reference() {
    cross_validate("s298", 16, 2);
}

#[test]
fn s386_transition_sim_matches_reference() {
    cross_validate("s386", 12, 3);
}
