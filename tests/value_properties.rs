//! Width-generic packed-value property tests: every lane of every backend
//! must behave exactly like a scalar [`Logic`] value, and the lane masks
//! the diff operations produce must agree with per-lane predicates. One
//! generic checker runs against [`Pv64`], [`Pv256`], and [`Pv512`], so
//! adding a backend means adding one instantiation line, not a new suite.

use gatest_netlist::GateKind;
use gatest_sim::{LaneMask, Logic, PackedValue, Pv256, Pv512, Pv64};
use proptest::collection::vec;
use proptest::prelude::*;

fn logic() -> impl Strategy<Value = Logic> {
    prop_oneof![Just(Logic::Zero), Just(Logic::One), Just(Logic::X)]
}

/// Lane values for the widest backend; narrower backends use a prefix.
fn lanes() -> impl Strategy<Value = Vec<Logic>> {
    vec(logic(), Pv512::LANES)
}

/// Packs the first `P::LANES` of `values` into a word, lane by lane.
fn pack<P: PackedValue>(values: &[Logic]) -> P {
    let mut word = P::ALL_X;
    for (lane, &v) in values.iter().take(P::LANES).enumerate() {
        word.set_lane(lane, v);
    }
    word
}

/// Scalar reference for [`PackedValue::eval_gate`], folding [`Logic`] ops
/// the same way the portable packed fold does.
fn eval_gate_scalar(kind: GateKind, fanin: &[Logic]) -> Logic {
    match kind {
        GateKind::And => fanin.iter().fold(Logic::One, |a, &b| a.and(b)),
        GateKind::Nand => !fanin.iter().fold(Logic::One, |a, &b| a.and(b)),
        GateKind::Or => fanin.iter().fold(Logic::Zero, |a, &b| a.or(b)),
        GateKind::Nor => !fanin.iter().fold(Logic::Zero, |a, &b| a.or(b)),
        GateKind::Xor => fanin.iter().fold(Logic::Zero, |a, &b| a.xor(b)),
        GateKind::Xnor => !fanin.iter().fold(Logic::Zero, |a, &b| a.xor(b)),
        GateKind::Not => !fanin[0],
        GateKind::Buf => fanin[0],
        GateKind::Const0 => Logic::Zero,
        GateKind::Const1 => Logic::One,
        GateKind::Input | GateKind::Dff => unreachable!("not evaluated"),
    }
}

/// Logic gates with a fanin list (constants ride along with empty fanin).
const EVAL_KINDS: [GateKind; 10] = [
    GateKind::And,
    GateKind::Nand,
    GateKind::Or,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
    GateKind::Not,
    GateKind::Buf,
    GateKind::Const0,
    GateKind::Const1,
];

fn check_lane_ops<P: PackedValue>(a: &[Logic], b: &[Logic]) {
    let pa: P = pack::<P>(a);
    let pb: P = pack::<P>(b);
    prop_assert!(pa.is_valid() && pb.is_valid(), "{} packing", P::NAME);
    let and = pa.and(pb);
    let or = pa.or(pb);
    let xor = pa.xor(pb);
    let not = pa.not();
    let binary = pa.binary_diff(pb);
    let any = pa.any_diff(pb);
    let known = pa.known_mask();
    for lane in 0..P::LANES {
        let (x, y) = (a[lane], b[lane]);
        prop_assert_eq!(pa.get_lane(lane), x, "{} set/get lane {}", P::NAME, lane);
        prop_assert_eq!(
            and.get_lane(lane),
            x.and(y),
            "{} and lane {}",
            P::NAME,
            lane
        );
        prop_assert_eq!(or.get_lane(lane), x.or(y), "{} or lane {}", P::NAME, lane);
        prop_assert_eq!(
            xor.get_lane(lane),
            x.xor(y),
            "{} xor lane {}",
            P::NAME,
            lane
        );
        prop_assert_eq!(not.get_lane(lane), !x, "{} not lane {}", P::NAME, lane);
        let binary_ref = matches!(
            (x, y),
            (Logic::Zero, Logic::One) | (Logic::One, Logic::Zero)
        );
        prop_assert_eq!(
            binary.test(lane),
            binary_ref,
            "{} binary_diff lane {}",
            P::NAME,
            lane
        );
        prop_assert_eq!(any.test(lane), x != y, "{} any_diff lane {}", P::NAME, lane);
        prop_assert_eq!(
            known.test(lane),
            x.is_known(),
            "{} known_mask lane {}",
            P::NAME,
            lane
        );
    }
    // Mask invariants the simulator's merge depends on: ascending
    // enumeration, consistent counts, and first = first enumerated.
    let mut seen = Vec::new();
    any.for_each(|lane| seen.push(lane));
    prop_assert!(seen.windows(2).all(|w| w[0] < w[1]), "{} order", P::NAME);
    prop_assert_eq!(seen.len(), any.count() as usize, "{} count", P::NAME);
    prop_assert_eq!(seen.first().copied(), any.first(), "{} first", P::NAME);
}

fn check_force_roundtrip<P: PackedValue>(a: &[Logic], mask_lanes: &[bool], v: Logic) {
    let word: P = pack::<P>(a);
    let mut mask = P::Mask::EMPTY;
    for (lane, &on) in mask_lanes.iter().take(P::LANES).enumerate() {
        if on {
            mask = mask.or(P::Mask::bit(lane));
        }
    }
    let forced = word.force(mask, v);
    prop_assert!(forced.is_valid(), "{} force validity", P::NAME);
    for (lane, &orig) in a.iter().enumerate().take(P::LANES) {
        let expect = if mask.test(lane) { v } else { orig };
        prop_assert_eq!(
            forced.get_lane(lane),
            expect,
            "{} force lane {}",
            P::NAME,
            lane
        );
    }
    // Forcing is idempotent and self-reporting: forced lanes no longer
    // differ from a broadcast of the forced value.
    let diff = forced.any_diff(P::broadcast(v));
    prop_assert!(!diff.and(mask).any(), "{} forced lanes differ", P::NAME);
}

fn check_planes_roundtrip<P: PackedValue>(a: &[Logic]) {
    let word: P = pack::<P>(a);
    let mut zero = vec![0u64; P::WORDS];
    let mut one = vec![0u64; P::WORDS];
    word.store_planes(&mut zero, &mut one);
    prop_assert_eq!(
        P::load_planes(&zero, &one),
        word,
        "{} SoA plane round-trip",
        P::NAME
    );
}

fn check_eval_gate<P: PackedValue>(fanin: &[Vec<Logic>]) {
    for kind in EVAL_KINDS {
        let packed_fanin: Vec<P> = match kind {
            GateKind::Not | GateKind::Buf => vec![pack::<P>(&fanin[0])],
            GateKind::Const0 | GateKind::Const1 => Vec::new(),
            _ => fanin.iter().map(|f| pack::<P>(f)).collect(),
        };
        let out = P::eval_gate(kind, &packed_fanin);
        for lane in 0..P::LANES {
            let scalar_fanin: Vec<Logic> = match kind {
                GateKind::Not | GateKind::Buf => vec![fanin[0][lane]],
                GateKind::Const0 | GateKind::Const1 => Vec::new(),
                _ => fanin.iter().map(|f| f[lane]).collect(),
            };
            prop_assert_eq!(
                out.get_lane(lane),
                eval_gate_scalar(kind, &scalar_fanin),
                "{} {:?} lane {}",
                P::NAME,
                kind,
                lane
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lane_ops_match_scalar_logic(a in lanes(), b in lanes()) {
        check_lane_ops::<Pv64>(&a, &b);
        check_lane_ops::<Pv256>(&a, &b);
        check_lane_ops::<Pv512>(&a, &b);
    }

    #[test]
    fn force_masks_round_trip(
        a in lanes(),
        mask in vec(any::<bool>(), Pv512::LANES),
        v in logic(),
    ) {
        check_force_roundtrip::<Pv64>(&a, &mask, v);
        check_force_roundtrip::<Pv256>(&a, &mask, v);
        check_force_roundtrip::<Pv512>(&a, &mask, v);
    }

    #[test]
    fn soa_planes_round_trip(a in lanes()) {
        check_planes_roundtrip::<Pv64>(&a);
        check_planes_roundtrip::<Pv256>(&a);
        check_planes_roundtrip::<Pv512>(&a);
    }

    /// Gate evaluation — including the wide backends' runtime-dispatched
    /// AVX2 path on hosts that have it — matches a per-lane scalar
    /// [`Logic`] fold for every gate kind and fanin width.
    #[test]
    fn eval_gate_matches_scalar_fold(fanin in vec(lanes(), 1..5usize)) {
        check_eval_gate::<Pv64>(&fanin);
        check_eval_gate::<Pv256>(&fanin);
        check_eval_gate::<Pv512>(&fanin);
    }

    #[test]
    fn broadcast_fills_every_lane(v in logic()) {
        for lane in 0..Pv64::LANES {
            prop_assert_eq!(Pv64::broadcast(v).get_lane(lane), v);
        }
        for lane in 0..Pv256::LANES {
            prop_assert_eq!(Pv256::broadcast(v).get_lane(lane), v);
        }
        for lane in 0..Pv512::LANES {
            prop_assert_eq!(Pv512::broadcast(v).get_lane(lane), v);
        }
    }
}
