//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of criterion's API that the workspace's benches use.
//! Each benchmark closure is executed a small fixed number of times and a
//! single wall-clock measurement is printed — enough to smoke-run every
//! bench and compare orders of magnitude, without criterion's statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark.
const ITERS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Throughput annotation (accepted, not currently reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing a name and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "bench {}/{}: {:?} ({} iters)",
            self.name, id, bencher.elapsed, ITERS
        );
        self
    }

    /// Runs one benchmark closure with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value barrier preventing the optimizer from deleting a result.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary from its groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(1));
        group.bench_function("one", |b| b.iter(|| runs += 1));
        assert_eq!(runs, ITERS);
        group.bench_with_input(BenchmarkId::from_parameter("p"), "in", |b, i| {
            assert_eq!(*i, *"in");
            b.iter(|| ())
        });
        group.finish();
    }
}
