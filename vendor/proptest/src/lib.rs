//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of proptest's API that the workspace's property tests
//! use: [`Strategy`] with `prop_map`, [`any`], [`Just`], integer/float range
//! strategies, tuple strategies, [`collection::vec`], `prop_oneof!`, and the
//! `proptest!`/`prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via
//!   the ordinary `assert!` machinery; it is not minimized.
//! * **Deterministic sampling.** Each test's case stream is seeded from the
//!   test's module path and name, so failures reproduce exactly across runs
//!   and machines.

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro-style generator backing all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds the generator for one `(test, case)` pair. The test name is
    /// folded in with FNV-1a so every test gets an independent stream.
    pub fn for_case(test: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h ^ (u64::from(case).wrapping_mul(0x2545_f491_4f6c_dd1d)))
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is irrelevant for test-input sampling.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical "arbitrary value" strategy, used by [`any`].
pub trait Arbitrary {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.f64()
    }
}

/// Strategy for any value of an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the canonical strategy for `T` (`any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategy machinery that `prop_oneof!` expands to.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Uniform choice between boxed alternative strategies.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options` (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Boxes a strategy for storage in a [`Union`]; lets the macro rely on
    /// inference instead of naming the associated type in a cast.
    pub fn union_box<T, S>(s: S) -> Box<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(s)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)`: a vector whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — plain `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_box($s)),+])
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(5u64..=5), &mut rng);
            assert_eq!(w, 5);
            let f = Strategy::generate(&(1.0f64..2.0), &mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn case_streams_are_deterministic() {
        let a = TestRng::for_case("t", 3).next_u64();
        let b = TestRng::for_case("t", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, TestRng::for_case("t", 4).next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(v in crate::collection::vec(any::<bool>(), 4..=4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn oneof_and_just_work(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }
}
